"""The Flowserver service.

Runs inside the SDN controller (like the paper's Floodlight application)
and exposes the RPC the Mayflower client calls during reads: *given a
client, the file's replica hosts and a size, which replica(s) should I read
from, over which path(s), and how much from each?*

The same object also serves as a **path-only scheduler** for the
``Nearest Mayflower`` / ``Sinbad-R Mayflower`` / ``HDFS-Mayflower``
baselines: pass a single pre-selected replica and the optimization space
collapses to path choice, exactly as §6.2 describes.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from types import TracebackType
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Type

from repro.core.adaptive_stats import AdaptiveStatsCollector, AdaptiveStatsConfig
from repro.core.cost import LinkShareCache, estimate_path_share
from repro.core.fanout import (
    EdgeEstimate,
    FanoutPlan,
    plan_fanout,
    static_chain_plan,
)
from repro.core.flow_state import FlowStateTable, TrackedFlow
from repro.core.multireplica import MultiReplicaPlanner, SubflowPlan
from repro.core.selection import PathChoice, select_replica_and_path
from repro.core.stats import FlowStatsCollector
from repro.net.ecmp import EcmpHasher
from repro.net.routing import Path, RoutingTable
from repro.sdn.controller import Controller
from repro.sdn.openflow import FlowRemoved
from repro.sim import instrument
from repro.sim.engine import EventLoop


@dataclass(frozen=True)
class Assignment:
    """One transfer the client must perform for a read request.

    ``path`` is ``None`` for a local read (replica on the client host);
    otherwise the flow id has already been registered with the Flowserver
    and the path installed in the switches is implied by starting the
    transfer through the controller.
    """

    flow_id: Optional[str]
    replica: str
    path: Optional[Path]
    size_bits: float
    est_bw_bps: float


@dataclass(frozen=True)
class SelectionResult:
    """Reply to a replica-selection RPC: one or two assignments."""

    request_id: str
    assignments: Sequence[Assignment]

    @property
    def is_local(self) -> bool:
        return len(self.assignments) == 1 and self.assignments[0].path is None

    @property
    def is_split(self) -> bool:
        return len(self.assignments) > 1


@dataclass
class FlowserverConfig:
    """Tunables for the Flowserver (defaults reproduce the paper).

    Attributes
    ----------
    poll_interval:
        Edge-switch stats collection period, seconds.
    enable_multi_replica:
        §4.3 split reads (on in the paper's "Mayflower" configuration).
    enable_freeze:
        Pseudocode 2 update-freeze; disabling it is an ablation that lets
        stale stats clobber fresh analytic estimates.
    include_existing_flows_in_cost:
        The second term of Eq. 2; disabling degenerates to greedy
        max-bandwidth selection (ablation).
    split_improvement_factor:
        Required combined-bandwidth gain to accept a split read.
    """

    poll_interval: float = 1.0
    #: Monitoring strategy: ``"fixed"`` is the paper's poll-everything
    #: loop (default; fingerprint-stable), ``"adaptive"`` enables the
    #: Floware-style balanced, cadence-aware, push-assisted collector
    #: (:mod:`repro.core.adaptive_stats`), tuned by ``adaptive``.
    poll_mode: str = "fixed"
    adaptive: AdaptiveStatsConfig = field(default_factory=AdaptiveStatsConfig)
    enable_multi_replica: bool = True
    enable_freeze: bool = True
    include_existing_flows_in_cost: bool = True
    split_improvement_factor: float = 1.0
    #: Keep a bounded log of selection decisions (operator introspection;
    #: see :meth:`Flowserver.explain_recent`).  0 disables tracing.
    decision_log_size: int = 0
    #: Degraded-mode trigger: a path whose source edge switch missed this
    #: many consecutive stats polls is untrusted (its counters are
    #: garbage) and excluded from cost-model optimization.  When *no*
    #: candidate is trusted the Flowserver stops optimizing and spreads
    #: flows by ECMP over the healthy paths until polling recovers.
    #: <= 0 disables staleness-based demotion.
    stale_poll_threshold: int = 3
    #: Hash salt for the degraded-mode ECMP fallback.
    degraded_ecmp_salt: int = 0x5AFE


#: Histogram buckets for candidate-paths-per-selection (counts, not time).
_CANDIDATE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


@dataclass(frozen=True)
class DecisionRecord:
    """One traced replica/path selection."""

    time: float
    request_id: str
    client: str
    replicas: Sequence[str]
    candidates_evaluated: int
    chosen: Sequence[str]  # replica per subflow ("local" for local reads)
    est_bw_bps: Sequence[float]
    split: bool


class Flowserver:
    """Replica/path selection service co-designed with the SDN controller."""

    def __init__(
        self,
        controller: Controller,
        routing: RoutingTable,
        config: Optional[FlowserverConfig] = None,
    ):
        self._controller = controller
        self._routing = routing
        self.config = config or FlowserverConfig()
        self.state = FlowStateTable()
        #: Long-lived per-link allocation memo shared by every candidate
        #: sweep; self-invalidates on any FlowStateTable mutation.
        self.link_cache = LinkShareCache(self.state)
        self._loop = controller.network.loop
        self._capacities = {
            lid: link.capacity_bps
            for lid, link in controller.network.topology.links.items()
        }
        self._planner = MultiReplicaPlanner(self.config.split_improvement_factor)
        if self.config.poll_mode == "fixed":
            self.collector: FlowStatsCollector = FlowStatsCollector(
                self._loop,
                controller,
                self.state,
                poll_interval=self.config.poll_interval,
            )
        elif self.config.poll_mode == "adaptive":
            self.collector = AdaptiveStatsCollector(
                self._loop,
                controller,
                self.state,
                poll_interval=self.config.poll_interval,
                config=self.config.adaptive,
            )
        else:
            raise ValueError(
                f"poll_mode must be 'fixed' or 'adaptive', "
                f"got {self.config.poll_mode!r}"
            )
        controller.add_flow_removed_listener(self._on_flow_removed)
        self._flow_seq = itertools.count()
        self._request_seq = itertools.count()
        # Degraded-mode machinery: a separate ECMP sequence counter is
        # drawn only when the cost model is bypassed, so fault-free runs
        # consume nothing and stay bit-identical.
        self._degraded_hasher = EcmpHasher(salt=self.config.degraded_ecmp_salt)
        self._ecmp_seq = itertools.count()
        self._degraded_since: Optional[float] = None
        # Selection telemetry (consumed by experiments/ablations).
        self.requests_served = 0
        self.local_reads = 0
        self.split_reads = 0
        self.degraded_selections = 0
        self.degraded_entries = 0
        self.unreachable_path_selections = 0
        self.fanout_requests = 0
        self.fanout_tree_plans = 0
        self.fanout_chain_plans = 0
        self.fanout_static_fallbacks = 0
        self.fanout_reservations = 0
        self._intent_seq = itertools.count()
        self.recovery_times: List[float] = []
        self.decision_log: Deque[DecisionRecord] = deque(
            maxlen=self.config.decision_log_size or None
        )
        instrument.notify_component("flowserver", self)

    @property
    def loop(self) -> EventLoop:
        """The simulated clock driving this Flowserver (SimSanitizer seam)."""
        return self._loop

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop background polling so the event loop can drain to idle.

        The Flowserver stays queryable after closing (counters, decision
        log, tracked state); only its periodic timer is torn down.
        Idempotent — prefer ``with Flowserver(...) as fs:`` over pairing
        manual ``close()`` calls with every early return.
        """
        self.collector.stop()

    def __enter__(self) -> "Flowserver":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    # ------------------------------------------------------------------
    # RPC surface
    # ------------------------------------------------------------------

    def select(
        self,
        client: str,
        replicas: Sequence[str],
        size_bits: float,
        job_id: Optional[str] = None,
    ) -> SelectionResult:
        """Select replica(s) and path(s) for a read request.

        Mirrors the RPC of §5: takes the candidate replica hosts and the
        size, returns the replicas and per-replica sizes to read.  The
        returned flow ids are pre-registered in the Flowserver state and
        the caller must start the transfers through the controller using
        exactly those ids.
        """
        if not replicas:
            raise ValueError("a read request needs at least one replica")
        if size_bits <= 0:
            raise ValueError(f"read size must be positive, got {size_bits}")
        request_id = job_id or f"req{next(self._request_seq)}"
        self.requests_served += 1

        if client in replicas:
            # Data-local read: no network flow at all.
            self.local_reads += 1
            self._trace(request_id, client, replicas, 0, ("local",), (float("inf"),), False)
            return SelectionResult(
                request_id=request_id,
                assignments=(
                    Assignment(
                        flow_id=None,
                        replica=client,
                        path=None,
                        size_bits=size_bits,
                        est_bw_bps=float("inf"),
                    ),
                ),
            )

        candidates = self._routing.paths_from_replicas(list(replicas), client)
        if not candidates:
            raise ValueError(f"no network path from replicas {replicas!r} to {client!r}")

        # Graceful degradation (robustness co-design): drop paths crossing
        # failed links/switches, then drop paths whose stats are stale.
        # Order-preserving filters — with a fully healthy network both are
        # identity transforms and the selection below is unchanged.
        healthy = [p for p in candidates if self._controller.path_is_up(p)]
        if not healthy:
            # Total outage between these replicas and the client: return
            # an ECMP pick over the full set.  The transfer aborts
            # immediately and the client's backoff waits out the outage —
            # the Flowserver must not block or throw on garbage state.
            self.unreachable_path_selections += 1
            return self._degraded_select(
                request_id, client, replicas, candidates, size_bits
            )
        trusted = [p for p in healthy if self._path_trusted(p)]
        if not trusted:
            # Counters behind every healthy path are stale — optimizing
            # with them would be worse than spreading load blindly, so
            # fall back to ECMP until polling recovers (the miss counters
            # reset and paths re-promote automatically).
            return self._degraded_select(
                request_id, client, replicas, healthy, size_bits
            )
        self._note_recovered()
        candidates = trusted

        if self.config.enable_multi_replica and len({p.src for p in candidates}) > 1:
            plans = self._planner.plan(
                candidates,
                flow_ids=(self._next_flow_id(), self._next_flow_id()),
                flow_size_bits=size_bits,
                link_capacity_bps=self._capacities,
                state=self.state,
                now=self._loop.now,
                include_existing_flows=self.config.include_existing_flows_in_cost,
                job_id=request_id,
                cache=self.link_cache,
            )
            if len(plans) > 1:
                self.split_reads += 1
            assignments = tuple(self._plan_to_assignment(p) for p in plans)
        else:
            flow_id = self._next_flow_id()
            choice = select_replica_and_path(
                candidates,
                flow_id=flow_id,
                flow_size_bits=size_bits,
                link_capacity_bps=self._capacities,
                state=self.state,
                now=self._loop.now,
                include_existing_flows=self.config.include_existing_flows_in_cost,
                job_id=request_id,
                cache=self.link_cache,
            )
            assignments = (
                Assignment(
                    flow_id=flow_id,
                    replica=choice.replica,
                    path=choice.path,
                    size_bits=size_bits,
                    est_bw_bps=choice.cost.est_bw_bps,
                ),
            )

        if not self.config.enable_freeze:
            # Ablation: undo the freeze flags SETBW just applied.
            for flow in self.state.flows.values():
                flow.freezed = False
        # The collector idles when no flows are tracked; wake it back up.
        self.collector.start()
        self._trace(
            request_id,
            client,
            replicas,
            len(candidates),
            tuple(a.replica for a in assignments),
            tuple(a.est_bw_bps for a in assignments),
            len(assignments) > 1,
        )
        return SelectionResult(request_id=request_id, assignments=assignments)

    def select_path_only(
        self,
        client: str,
        replica: str,
        size_bits: float,
        job_id: Optional[str] = None,
    ) -> SelectionResult:
        """Path selection for a pre-chosen replica (baseline scheduler mode)."""
        return self.select(client, [replica], size_bits, job_id=job_id)

    def plan_replication_fanout(
        self,
        writer: str,
        replicas: Sequence[str],
        size_bits: float,
        job_id: Optional[str] = None,
    ) -> FanoutPlan:
        """Choose the relay topology (chain vs. tree) for one append.

        The write-path side of the co-design: the client hands the
        Flowserver the file's replica set and the append size, and gets
        back a :class:`~repro.core.fanout.FanoutPlan` — writer→primary
        push path plus the relay tree the primary should fan the commit
        out over, shaped by current max-min share estimates.

        Planning applies no SETBW to existing flows, but it is not blind
        to itself: every planned edge registers a short-lived
        **reservation flow** in the state table, expiring after the
        plan's estimated completion.  Without reservations, concurrent
        writers planning in the same quiet instant would all see an idle
        network and herd onto the same "best" links; with them, each
        plan's cost sweep sees the fan-outs planned just before it and
        spreads.  An abandoned plan (the client retried elsewhere, the
        primary was fenced) costs nothing durable — its reservations
        expire on their own, and the stats collector's unseen-flow expiry
        backstops them.

        When any needed edge has no healthy, trusted path — the same
        degraded signals :meth:`select` uses — the whole plan falls back
        to a static ECMP chain in replica order, matching the read path's
        degrade-to-ECMP behaviour.
        """
        if not replicas:
            raise ValueError("an append needs at least one replica")
        if size_bits <= 0:
            raise ValueError(f"append size must be positive, got {size_bits}")
        self.fanout_requests += 1
        primary = replicas[0]
        secondaries = [r for r in replicas[1:]]

        class _Degraded(Exception):
            pass

        def estimate(src: str, dst: str) -> EdgeEstimate:
            edge = self._fanout_edge(src, dst)
            if edge is None:
                raise _Degraded(f"{src}->{dst}")
            return edge

        try:
            plan = plan_fanout(
                writer, primary, secondaries, size_bits, estimate
            )
        except _Degraded:
            plan = static_chain_plan(writer, primary, secondaries)
            self.fanout_static_fallbacks += 1
        if plan.kind == "tree":
            self.fanout_tree_plans += 1
            self._reserve_plan(plan, size_bits, job_id)
        elif plan.kind == "chain":
            self.fanout_chain_plans += 1
            self._reserve_plan(plan, size_bits, job_id)
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(
                self._loop.now,
                "flowserver.fanout",
                "decision",
                request=job_id or "",
                writer=writer,
                primary=primary,
                kind=plan.kind,
                est_completion_s=plan.est_completion_s,
            )
            tel.count("flowserver_fanout_requests_total")
            tel.count(f"flowserver_fanout_{plan.kind}_total")
        return plan

    def _reserve_plan(
        self, plan: FanoutPlan, size_bits: float, job_id: Optional[str]
    ) -> None:
        """Register expiring reservation flows for a plan's pinned edges.

        Each reserved edge occupies its links in the state table at the
        planned share, so the next plan's max-min sweep routes around it.
        Reservations self-expire after the whole plan's estimated
        completion (every relay edge is busy somewhere in that window);
        by then the real transfers have surfaced through stats polling.
        """
        edges: List[Tuple[Path, float]] = []
        if plan.push_path is not None:
            edges.append((plan.push_path, plan.push_bw_bps))
        stack = list(plan.children)
        while stack:
            node = stack.pop()
            if node.path is not None:
                edges.append((node.path, node.est_bw_bps))
            stack.extend(node.children)
        if not edges:
            return
        now = self._loop.now
        horizon = plan.est_completion_s
        if not math.isfinite(horizon) or horizon <= 0:
            return
        for path, bw_bps in edges:
            if not (bw_bps > 0 and math.isfinite(bw_bps)):
                continue
            flow_id = f"fanout-intent-{next(self._intent_seq)}"
            self.state.add(
                TrackedFlow(
                    flow_id=flow_id,
                    path_link_ids=path.link_ids,
                    size_bits=size_bits,
                    remaining_bits=size_bits,
                    bw_bps=bw_bps,
                    freezed=True,
                    freeze_until=now + horizon,
                    job_id=job_id,
                )
            )
            self.fanout_reservations += 1
            self._loop.call_at(
                now + horizon,
                lambda fid=flow_id: self.state.remove(fid),
            )

    def _fanout_edge(self, src: str, dst: str) -> Optional[EdgeEstimate]:
        """Best (path, est share) for one relay edge, or ``None`` when no
        healthy trusted path exists (degraded — caller falls back)."""
        if src == dst:
            return (None, float("inf"))
        candidates = self._routing.paths(src, dst)
        healthy = [p for p in candidates if self._controller.path_is_up(p)]
        trusted = [p for p in healthy if self._path_trusted(p)]
        if not trusted:
            return None
        scored: List[Tuple[Path, float]] = []
        for path in trusted:
            bw, _ = estimate_path_share(
                path.link_ids, self._capacities, self.state,
                cache=self.link_cache,
            )
            scored.append((path, bw))
        # Highest estimated share wins; exact ties resolve to the
        # lexicographically smallest path so planning stays deterministic.
        best_path, best_bw = min(scored, key=lambda s: (-s[1], s[0].link_ids))
        return (best_path, best_bw)

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether the last selection ran without a trusted path."""
        return self._degraded_since is not None

    def time_to_recover(self) -> float:
        """Mean seconds spent degraded per episode (0 when never degraded)."""
        if not self.recovery_times:
            return 0.0
        return sum(self.recovery_times) / len(self.recovery_times)

    def _path_trusted(self, path: Path) -> bool:
        """A path is trusted when its source edge switch (the one whose
        flow counters feed this path's bandwidth estimates) is answering
        stats polls."""
        threshold = self.config.stale_poll_threshold
        if threshold <= 0:
            return True
        topo = self._controller.network.topology
        source_switch = topo.links[path.link_ids[0]].dst
        return self.collector.consecutive_misses(source_switch) < threshold

    def _note_recovered(self) -> None:
        if self._degraded_since is not None:
            episode = self._loop.now - self._degraded_since
            self.recovery_times.append(episode)
            self._degraded_since = None
            tel = instrument.TELEMETRY
            if tel is not None:
                tel.instant(self._loop.now, "flowserver.degraded.recover",
                            "degraded", episode_seconds=episode)

    def _degraded_select(
        self,
        request_id: str,
        client: str,
        replicas: Sequence[str],
        pool: Sequence[Path],
        size_bits: float,
    ) -> SelectionResult:
        """ECMP fallback: pick a path by hash, skip the cost model.

        The flow is still registered (at an optimistic bottleneck-capacity
        estimate, frozen like any SETBW) so FlowRemoved cleanup, stats
        polling and later cost estimates keep working; no SETBW is applied
        to existing flows because the model is not to be trusted right now.
        """
        self.degraded_selections += 1
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.count("flowserver_degraded_selections_total")
        if self._degraded_since is None:
            self._degraded_since = self._loop.now
            self.degraded_entries += 1
            if tel is not None:
                tel.instant(self._loop.now, "flowserver.degraded.enter",
                            "degraded", request=request_id, pool=len(pool))
        # The pool spans several replicas, but ECMP hashes within one
        # (src, dst) pair — spread replicas round-robin, then hash among
        # that replica's equal-cost paths.
        seq = next(self._ecmp_seq)
        sources = sorted({p.src for p in pool})
        src = sources[seq % len(sources)]
        same_src = [p for p in pool if p.src == src]
        path = self._degraded_hasher.pick_for_flow(same_src, seq)
        flow_id = self._next_flow_id()
        est_bw = min(self._capacities[lid] for lid in path.link_ids)
        tracked = TrackedFlow(
            flow_id=flow_id,
            path_link_ids=path.link_ids,
            size_bits=size_bits,
            remaining_bits=size_bits,
            bw_bps=est_bw,
            job_id=request_id,
        )
        self.state.add(tracked)
        self.state.set_bw(flow_id, est_bw, self._loop.now)
        if not self.config.enable_freeze:
            for flow in self.state.flows.values():
                flow.freezed = False
        self.collector.start()
        self._trace(
            request_id,
            client,
            replicas,
            len(pool),
            (path.src,),
            (est_bw,),
            False,
        )
        return SelectionResult(
            request_id=request_id,
            assignments=(
                Assignment(
                    flow_id=flow_id,
                    replica=path.src,
                    path=path,
                    size_bits=size_bits,
                    est_bw_bps=est_bw,
                ),
            ),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def tracked_flow(self, flow_id: str) -> Optional[TrackedFlow]:
        return self.state.get(flow_id)

    def tracked_flow_count(self) -> int:
        return len(self.state)

    def explain_recent(self, count: int = 10) -> str:
        """Human-readable rendering of the last ``count`` traced decisions."""
        if not self.decision_log:
            return "no decisions traced (set FlowserverConfig.decision_log_size)"
        lines = []
        for record in list(self.decision_log)[-count:]:
            chosen = " + ".join(
                f"{replica}@{bw / 1e6:.0f}Mbps"
                for replica, bw in zip(record.chosen, record.est_bw_bps)
            )
            kind = "SPLIT" if record.split else ("LOCAL" if record.chosen == ("local",) else "single")
            lines.append(
                f"[t={record.time:9.3f}] {record.request_id}: {record.client} <- "
                f"{chosen} ({kind}; {record.candidates_evaluated} paths evaluated)"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _trace(
        self,
        request_id: str,
        client: str,
        replicas: Sequence[str],
        candidates_evaluated: int,
        chosen: Sequence[str],
        est_bw: Sequence[float],
        split: bool,
    ) -> None:
        """Trace one selection decision — built once, fanned out twice.

        The record feeds the bounded operator log (when
        ``decision_log_size`` > 0) and the telemetry layer (when a session
        is installed); with neither consumer it is never constructed.
        """
        tel = instrument.TELEMETRY
        if self.config.decision_log_size <= 0 and tel is None:
            return
        record = DecisionRecord(
            time=self._loop.now,
            request_id=request_id,
            client=client,
            replicas=tuple(replicas),
            candidates_evaluated=candidates_evaluated,
            chosen=tuple(chosen),
            est_bw_bps=tuple(est_bw),
            split=split,
        )
        if self.config.decision_log_size > 0:
            self.decision_log.append(record)
        if tel is not None:
            kind = (
                "split" if split
                else ("local" if record.chosen == ("local",) else "single")
            )
            tel.instant(
                record.time,
                "flowserver.select",
                "decision",
                request=request_id,
                client=client,
                chosen=list(record.chosen),
                kind=kind,
                candidates=candidates_evaluated,
            )
            tel.count("flowserver_requests_total")
            if kind == "local":
                tel.count("flowserver_local_reads_total")
            elif split:
                tel.count("flowserver_split_reads_total")
            tel.observe(
                "flowserver_candidates_evaluated",
                float(candidates_evaluated),
                buckets=_CANDIDATE_BUCKETS,
            )

    def _next_flow_id(self) -> str:
        return f"mf{next(self._flow_seq)}"

    def _plan_to_assignment(self, plan: SubflowPlan) -> Assignment:
        return Assignment(
            flow_id=plan.flow_id,
            replica=plan.replica,
            path=plan.choice.path,
            size_bits=plan.size_bits,
            est_bw_bps=plan.est_bw_bps,
        )

    def _on_flow_removed(self, message: FlowRemoved) -> None:
        """Drop state for completed flows (controller FlowRemoved events)."""
        self.state.remove(message.flow_id)
        self.collector.forget(message.flow_id)

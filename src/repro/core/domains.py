"""Per-pod Flowserver domains (sharded control plane).

One :class:`DomainFlowserver` runs per pod.  It *is* a
:class:`~repro.core.flowserver.Flowserver` — same selection sweep, same
freeze discipline, same degraded-mode machinery — constructed over a
:class:`~repro.sdn.domain.DomainController`, so its stats collector
polls only the pod's edge switches and its adaptive push subscriptions
stay inside the pod.  Intra-pod reads are served entirely by the
client's domain; inter-pod flows are placed by the
:class:`~repro.core.coordinator.GlobalCoordinator` and registered with
the *source* (replica-side) domain, whose collector watches the source
edge switch that feeds the flow's bandwidth estimates.

Each domain also answers :meth:`DomainFlowserver.summary` — the
aggregate pod-level headroom digest the coordinator composes instead of
per-link state: static uplink/downlink capacity plus the committed
bandwidth of the inter-pod flows this domain currently sources, bucketed
by destination pod.  That digest is O(pods) to combine, which is the
whole point of the refactor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, cast

from repro.core.flowserver import Flowserver, FlowserverConfig
from repro.net.routing import RoutingTable
from repro.net.topology import Tier
from repro.sdn.controller import Controller

if TYPE_CHECKING:
    from repro.sdn.domain import DomainController


@dataclass(frozen=True)
class DomainSummary:
    """One domain's aggregate contribution to inter-pod placement.

    ``outbound_bps`` maps destination pod → committed bandwidth of the
    inter-pod flows this domain currently sources toward it (tracked
    estimates, not ground truth — the same numbers the monolithic cost
    model would read, pre-aggregated).
    """

    pod: str
    uplink_capacity_bps: float
    downlink_capacity_bps: float
    outbound_bps: Dict[str, float] = field(default_factory=dict)
    tracked_flows: int = 0

    @property
    def total_outbound_bps(self) -> float:
        return sum(self.outbound_bps.values())


class DomainFlowserver(Flowserver):
    """A pod-scoped Flowserver (one controller domain).

    Identical selection behaviour to the monolith over its own pod; the
    only deltas are the pod-prefixed flow-id namespace (two domains must
    never mint the same id into the shared data plane) and the
    :meth:`summary` digest for the global coordinator.
    """

    def __init__(
        self,
        pod: str,
        controller: "DomainController",
        routing: RoutingTable,
        config: Optional[FlowserverConfig] = None,
    ) -> None:
        if controller.pod != pod:
            raise ValueError(
                f"controller is scoped to pod {controller.pod!r}, "
                f"not {pod!r}"
            )
        self.pod = pod
        # The DomainController is a structural (duck-typed) Controller:
        # it delegates every shared operation and scopes only the poll
        # set and the view.
        super().__init__(cast(Controller, controller), routing, config)
        topology = controller.network.topology
        self._pod_of_host = {
            host_id: host.pod for host_id, host in topology.hosts.items()
        }
        aggs = {
            s.switch_id
            for s in topology.switches_in_tier(Tier.AGGREGATION)
            if s.pod == pod
        }
        cores = {
            s.switch_id for s in topology.switches_in_tier(Tier.CORE)
        }
        up = 0.0
        down = 0.0
        for link in topology.links.values():
            if link.src in aggs and link.dst in cores:
                up += link.capacity_bps
            elif link.src in cores and link.dst in aggs:
                down += link.capacity_bps
        self._uplink_capacity_bps = up
        self._downlink_capacity_bps = down

    # ------------------------------------------------------------------
    # Coordinator-facing digest
    # ------------------------------------------------------------------

    def summary(self) -> DomainSummary:
        """Aggregate headroom digest of this domain's tracked flows."""
        topology = self._controller.network.topology
        outbound: Dict[str, float] = {}
        tracked = 0
        for flow in self.state.flows.values():
            if not flow.path_link_ids:
                continue
            tracked += 1
            src = topology.links[flow.path_link_ids[0]].src
            dst = topology.links[flow.path_link_ids[-1]].dst
            src_pod = self._pod_of_host.get(src)
            dst_pod = self._pod_of_host.get(dst)
            if src_pod != self.pod or dst_pod is None or dst_pod == self.pod:
                continue
            bw = flow.bw_bps
            if bw > 0 and math.isfinite(bw):
                outbound[dst_pod] = outbound.get(dst_pod, 0.0) + bw
        return DomainSummary(
            pod=self.pod,
            uplink_capacity_bps=self._uplink_capacity_bps,
            downlink_capacity_bps=self._downlink_capacity_bps,
            outbound_bps=outbound,
            tracked_flows=tracked,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _next_flow_id(self) -> str:
        # Pod-prefixed namespace: domains share one data plane, so ids
        # minted by different domains must never collide.
        return f"{self.pod}-{super()._next_flow_id()}"


def build_domain_flowservers(
    controller: Controller,
    routing: RoutingTable,
    config: Optional[FlowserverConfig] = None,
    pods: Optional[List[str]] = None,
) -> Dict[str, DomainFlowserver]:
    """Construct one :class:`DomainFlowserver` per pod (sorted order).

    Each domain gets its own scoped :class:`~repro.sdn.domain.
    DomainController` over the shared controller; configs are shared by
    reference (they are read-only tunables).
    """
    from repro.sdn.domain import DomainController

    topology = controller.network.topology
    domain_pods = list(pods) if pods is not None else topology.pods()
    domains: Dict[str, DomainFlowserver] = {}
    for pod in sorted(domain_pods):
        scoped = DomainController(controller, pod)
        domains[pod] = DomainFlowserver(pod, scoped, routing, config)
    return domains

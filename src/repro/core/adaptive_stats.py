"""Adaptive, push-assisted flow monitoring (``poll_mode="adaptive"``).

The paper's collector (:mod:`repro.core.stats`) polls *every* edge switch
on a fixed interval, so monitoring cost grows linearly with switch count
whether or not anything interesting is happening.  This module replaces
that loop — behind an off-by-default config knob — with three co-designed
mechanisms, following Floware's balanced-monitoring insight (PAPERS.md):

1. **Per-flow polling-point assignment.**  Every switch on a flow's
   installed path carries its table entry and sees the same cumulative
   counter, so any of them can serve as the flow's monitoring point.
   Flows are assigned to the least-loaded switch on their path
   (deterministic tie-break), spreading stats load across the fabric
   instead of concentrating it on edge switches.

2. **Per-flow adaptive cadence.**  Flows are polled on their own
   schedule, not the global metronome: *fast* (the base interval) while
   a flow is new, near freeze expiry, or its measured bandwidth is still
   moving; *slow* (``slow_factor`` × base) once consecutive measurements
   settle inside a hysteresis band — stable elephants and deep-frozen
   flows (whose measurements ``UPDATEBW`` would suppress anyway) carry
   almost no monitoring cost.

3. **Switch-side delta push.**  Slow flows register a byte-delta
   threshold with their switch (:class:`repro.sdn.push.DeltaPushService`);
   the switch proactively pushes counters that moved beyond it.  The
   collector reconciles pushes against its poll schedule idempotently
   (per-subscription sequence numbers; cumulative-counter differencing)
   and defers the flow's next poll, so a pushed observation *replaces* a
   polled one instead of adding to it.

Degraded-mode semantics are preserved: failed targeted polls bump the
same per-switch miss counters the Flowserver's ``stale_poll_threshold``
reads, stale switches keep being re-probed so recovery re-promotes them,
and a global monitoring outage (``suppress_polls``) stales every edge
switch exactly as in fixed mode.  Unseen-flow expiry counts *missed
observations* — polls that could have seen the flow but did not — never
raw ticks, so slow-cadence flows are not falsely expired.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Final, List, Optional, Set, Tuple, Union

from repro.core.flow_state import FlowStateTable, TrackedFlow
from repro.core.stats import (
    POLL_REPLY_BASE_BYTES,
    POLL_REPLY_PER_FLOW_BYTES,
    POLL_REQUEST_BYTES,
    FlowStatsCollector,
    PollRecord,
)
from repro.sdn.controller import Controller, SwitchUnreachableError
from repro.sdn.openflow import CounterPush, CounterPushBatch
from repro.sdn.push import (
    PUSH_MESSAGE_BYTES,
    PUSH_REPORT_BYTES,
    DeltaPushService,
)
from repro.sim import instrument
from repro.sim.engine import EventLoop

#: Cadence classes.  ``fast`` = the base poll interval; ``slow`` =
#: ``slow_factor`` × base.  Exported so telemetry consumers and tests can
#: match the span tags emitted per observation.
CADENCE_FAST: Final[str] = "fast"
CADENCE_SLOW: Final[str] = "slow"

#: Relative-change floor (bps) for the hysteresis comparison, so
#: near-zero measurements do not flap the cadence class on noise.
_HYSTERESIS_FLOOR_BPS: Final[float] = 1e6


@dataclass
class AdaptiveStatsConfig:
    """Tunables for adaptive monitoring (see module docstring).

    Attributes
    ----------
    slow_factor:
        Slow-cadence interval as a multiple of the base poll interval.
        Also the flow's *cadence ceiling*: no tracked flow goes
        unobserved longer than ``slow_factor`` base intervals (plus one
        tick of scheduling granularity) while its switch is answering.
    hysteresis:
        Relative bandwidth change below which a measurement counts as
        "stable"; ``stable_after`` consecutive stable measurements demote
        the flow to slow cadence.
    freeze_guard_s:
        Flows within this many seconds of freeze expiry are polled fast
        so the first post-expiry measurement lands promptly.  ``None``
        defaults to two base intervals.
    enable_push:
        Register switch-side delta push for slow-cadence flows.
    push_threshold_bytes:
        Counter delta beyond which the switch pushes proactively.
    push_check_interval:
        Switch-local counter check period; ``None`` defaults to the base
        poll interval.
    probe_failed_every:
        Ticks between liveness re-probes of a switch whose stats channel
        went stale (so recovery re-promotes it without waiting for a
        flow to be assigned there again).
    """

    slow_factor: float = 8.0
    hysteresis: float = 0.15
    stable_after: int = 2
    freeze_guard_s: Optional[float] = None
    enable_push: bool = True
    push_threshold_bytes: float = 16e6
    push_check_interval: Optional[float] = None
    probe_failed_every: int = 4

    def __post_init__(self) -> None:
        if self.slow_factor < 1.0:
            raise ValueError(f"slow_factor must be >= 1, got {self.slow_factor}")
        if self.hysteresis < 0.0:
            raise ValueError(f"hysteresis must be >= 0, got {self.hysteresis}")
        if self.stable_after < 1:
            raise ValueError(f"stable_after must be >= 1, got {self.stable_after}")
        if self.push_threshold_bytes <= 0:
            raise ValueError(
                f"push_threshold_bytes must be positive, got "
                f"{self.push_threshold_bytes}"
            )
        if self.probe_failed_every < 1:
            raise ValueError(
                f"probe_failed_every must be >= 1, got {self.probe_failed_every}"
            )


class AdaptiveStatsCollector(FlowStatsCollector):
    """Floware-style adaptive collector; drop-in for the fixed poller.

    The base class's counters, miss tracking and lifecycle are reused
    unchanged — the Flowserver's degraded-mode logic cannot tell the two
    apart.  Only the *schedule* differs: the periodic timer becomes a
    tick that visits exactly the flows whose next observation is due.
    """

    def __init__(
        self,
        loop: EventLoop,
        controller: Controller,
        state: FlowStateTable,
        poll_interval: float = 1.0,
        auto_start: bool = True,
        expire_unseen_polls: int = 10,
        config: Optional[AdaptiveStatsConfig] = None,
    ):
        # Defer the base class's auto-start: it would invoke our start()
        # override before the adaptive fields below exist.
        super().__init__(
            loop,
            controller,
            state,
            poll_interval=poll_interval,
            auto_start=False,
            expire_unseen_polls=expire_unseen_polls,
        )
        self.config = config or AdaptiveStatsConfig()
        self.slow_interval = poll_interval * self.config.slow_factor
        self._freeze_guard = (
            self.config.freeze_guard_s
            if self.config.freeze_guard_s is not None
            else 2.0 * poll_interval
        )
        # Per-flow monitoring schedule.
        self._assignment: Dict[str, str] = {}
        self._point_load: Dict[str, int] = {}
        self._next_due: Dict[str, float] = {}
        self._cadence: Dict[str, str] = {}
        self._streak: Dict[str, int] = {}
        self._last_measured: Dict[str, float] = {}
        #: Sim time each flow was last observed (poll or push); the
        #: cadence-ceiling property tests read this.
        self.last_observed: Dict[str, float] = {}
        self.tracked_since: Dict[str, float] = {}
        self._tick_index = 0
        self._probe_after: Dict[str, int] = {}
        # Push reconciliation.
        self._push_seq_seen: Dict[Tuple[str, str], int] = {}
        self.push_messages: Dict[str, int] = {}
        self.push_bytes: Dict[str, int] = {}
        self.pushes_applied = 0
        self.pushes_duplicate = 0
        self.pushes_stale = 0
        self.pushes_ignored = 0
        self.observations_total = 0
        self.push: Optional[DeltaPushService] = None
        if self.config.enable_push:
            self.push = DeltaPushService(
                loop,
                controller,
                sink=self.on_push,
                check_interval=(
                    self.config.push_check_interval
                    if self.config.push_check_interval is not None
                    else poll_interval
                ),
            )
        if auto_start:
            self.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cadence_of(self, flow_id: str) -> Optional[str]:
        """The flow's current cadence class (``None`` if untracked)."""
        return self._cadence.get(flow_id)

    def monitoring_point(self, flow_id: str) -> Optional[str]:
        """The switch currently assigned to observe ``flow_id``."""
        return self._assignment.get(flow_id)

    def cadence_ceiling(self) -> float:
        """Max seconds between observations of a healthy tracked flow
        (one slow interval plus one tick of scheduling granularity)."""
        return self.slow_interval + self.poll_interval

    def cadence_counts(self) -> Tuple[int, int]:
        """(fast, slow) flow counts."""
        fast = sum(1 for fid in sorted(self._cadence)
                   if self._cadence[fid] == CADENCE_FAST)
        return fast, len(self._cadence) - fast

    def total_push_messages(self) -> int:
        return sum(self.push_messages.values())

    def total_push_bytes(self) -> int:
        return sum(self.push_bytes.values())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def stop(self) -> None:
        super().stop()
        if self.push is not None:
            self.push.stop()

    def start(self) -> None:
        super().start()
        if self.push is not None and self.push.registered_flows() > 0:
            self.push._ensure_running()

    def forget(self, flow_id: str) -> None:
        super().forget(flow_id)
        self._forget_flow(flow_id)

    # ------------------------------------------------------------------
    # The adaptive tick
    # ------------------------------------------------------------------

    def poll_once(self) -> None:
        """One scheduling tick: observe exactly the flows that are due.

        Runs every base interval, but a tick with nothing due sends no
        messages at all — the controller-channel cost tracks the *flow
        schedule*, not the switch count.
        """
        now = self._loop.now
        self._tick_index += 1
        applied_before = self.measurements_applied
        suppressed_before = self.measurements_suppressed
        cycle_messages = 0
        cycle_bytes = 0

        self._sync_assignments(now)

        if self.suppress_polls:
            # Global monitoring outage: every edge switch's counters go
            # stale together, exactly as under fixed polling, so the
            # Flowserver's demotion logic sees the same signal.
            self.polls_lost += 1
            for switch_id in self._controller.edge_switch_ids():
                self.switch_missed_polls[switch_id] = (
                    self.switch_missed_polls.get(switch_id, 0) + 1
                )
            self._finish_tick(now, seen=0, due=0,
                              applied_before=applied_before,
                              suppressed_before=suppressed_before,
                              cycle_messages=0, cycle_bytes=0)
            return

        due: Dict[str, List[str]] = {}
        for flow_id in sorted(self._state.flows):
            when = self._next_due.get(flow_id)
            if when is None or when > now:
                continue
            point = self._assignment.get(flow_id)
            if point is None:
                continue
            due.setdefault(point, []).append(flow_id)

        seen: Set[str] = set()
        for switch_id in sorted(due):
            flow_ids = due[switch_id]
            try:
                reply = self._controller.query_flow_stats_for(
                    switch_id, flow_ids
                )
            except SwitchUnreachableError:
                self.poll_errors += 1
                self.switch_missed_polls[switch_id] = (
                    self.switch_missed_polls.get(switch_id, 0) + 1
                )
                # The request left the controller even with no reply.
                self._account_poll(switch_id, 1, POLL_REQUEST_BYTES)
                cycle_messages += 1
                cycle_bytes += POLL_REQUEST_BYTES
                self._probe_after[switch_id] = (
                    self._tick_index + self.config.probe_failed_every
                )
                # Move the orphaned flows to another switch on their
                # path (when one is healthy) and retry promptly.
                for flow_id in flow_ids:
                    self._assign(flow_id, avoid=switch_id)
                    self._next_due[flow_id] = now + self.poll_interval
                continue
            self.switch_missed_polls[switch_id] = 0
            self._probe_after.pop(switch_id, None)
            exchanged = (
                POLL_REQUEST_BYTES + POLL_REPLY_BASE_BYTES
                + POLL_REPLY_PER_FLOW_BYTES * len(reply.flows)
            )
            self._account_poll(switch_id, 2, exchanged)
            cycle_messages += 2
            cycle_bytes += exchanged
            for stat in reply.flows:
                if stat.flow_id not in self._state:
                    continue
                seen.add(stat.flow_id)
                self._observe(
                    stat.flow_id, stat.bytes_sent, stat.remaining_bits,
                    now, origin="poll",
                )
            for flow_id in flow_ids:
                if flow_id not in seen and flow_id in self._state:
                    self._note_unobserved(flow_id, now)

        cycle_messages, cycle_bytes = self._probe_stale_switches(
            now, due, cycle_messages, cycle_bytes
        )

        # Drop poll history for flows that left the state table between
        # ticks (FlowRemoved already cleaned the schedule via forget()).
        for flow_id in list(self._previous):
            if flow_id not in self._state:
                del self._previous[flow_id]

        self._finish_tick(now, seen=len(seen), due=sum(map(len, due.values())),
                          applied_before=applied_before,
                          suppressed_before=suppressed_before,
                          cycle_messages=cycle_messages,
                          cycle_bytes=cycle_bytes)

    def _finish_tick(
        self,
        now: float,
        seen: int,
        due: int,
        applied_before: int,
        suppressed_before: int,
        cycle_messages: int,
        cycle_bytes: int,
    ) -> None:
        self.polls_completed += 1
        tel = instrument.TELEMETRY
        if tel is not None:
            fast, slow = self.cadence_counts()
            tel.instant(
                now, "collector.poll", "poll",
                tracked=len(self._state), seen=seen, due=due,
                lost=self.suppress_polls, mode="adaptive",
                fast=fast, slow=slow, origin="poll",
            )
            tel.count("collector_polls_total")
            tel.metrics.counter("collector_measurements_applied_total").inc(
                float(self.measurements_applied - applied_before)
            )
            tel.metrics.counter("collector_measurements_suppressed_total").inc(
                float(self.measurements_suppressed - suppressed_before)
            )
            if cycle_messages:
                tel.tracer.counter(
                    now, "flowserver.poll.messages",
                    {"messages": float(cycle_messages),
                     "bytes": float(cycle_bytes)},
                    track="poll",
                )
        if not self._state.flows:
            self.stop()

    # ------------------------------------------------------------------
    # Polling-point assignment (Floware-style balancing)
    # ------------------------------------------------------------------

    def _sync_assignments(self, now: float) -> None:
        for flow_id in sorted(self._state.flows):
            if flow_id not in self._assignment:
                self._assign(flow_id)
                self._next_due[flow_id] = now
                self._cadence[flow_id] = CADENCE_FAST
                self.tracked_since[flow_id] = now
        for flow_id in sorted(self._assignment):
            if flow_id not in self._state:
                self._forget_flow(flow_id)

    def _candidate_points(self, flow: TrackedFlow) -> List[str]:
        topo = self._controller.network.topology
        candidates: List[str] = []
        for link_id in flow.path_link_ids:
            link = topo.links[link_id]
            for node in (link.src, link.dst):
                if node in topo.switches and node not in candidates:
                    candidates.append(node)
        return candidates

    def _assign(self, flow_id: str, avoid: Optional[str] = None) -> None:
        """(Re)assign a flow to the least-loaded switch on its path.

        ``avoid`` deprioritizes a switch that just failed a poll; known
        stale switches (nonzero miss counters) are likewise avoided when
        a clean alternative exists.
        """
        flow = self._state.get(flow_id)
        if flow is None:
            return
        candidates = self._candidate_points(flow)
        if not candidates:
            return
        preferred = [
            c for c in candidates
            if c != avoid and self.switch_missed_polls.get(c, 0) == 0
        ]
        pool = preferred or candidates
        # Load ties break toward the source edge switch: that is the
        # switch the Flowserver's `stale_poll_threshold` trust check keys
        # on, so monitoring it keeps degraded-mode demotion as prompt as
        # under fixed polling while load balancing still wins under load.
        source_edge = (
            self._controller.network.topology.links[flow.path_link_ids[0]].dst
            if flow.path_link_ids
            else ""
        )
        chosen = min(
            pool,
            key=lambda c: (
                self._point_load.get(c, 0),
                0 if c == source_edge else 1,
                c,
            ),
        )
        previous = self._assignment.get(flow_id)
        if previous == chosen:
            return
        if previous is not None:
            self._point_load[previous] = max(
                0, self._point_load.get(previous, 1) - 1
            )
            if self.push is not None:
                self.push.unregister(flow_id, previous)
        self._assignment[flow_id] = chosen
        self._point_load[chosen] = self._point_load.get(chosen, 0) + 1
        if self.push is not None and self._cadence.get(flow_id) == CADENCE_SLOW:
            self._register_push(chosen, flow_id)

    def _register_push(self, switch_id: str, flow_id: str) -> None:
        """Subscribe the flow's counter, starting a fresh seq window.

        A re-subscription starts its sequence numbers over from 1, so the
        collector's last-seen seq for the pair must reset with it —
        otherwise every push from the new subscription would be mistaken
        for a duplicate of the old one.
        """
        assert self.push is not None
        self._push_seq_seen.pop((switch_id, flow_id), None)
        record = self._previous.get(flow_id)
        self.push.register(
            switch_id, flow_id, self.config.push_threshold_bytes,
            baseline_bytes=record.bytes_sent if record else 0.0,
        )

    def _forget_flow(self, flow_id: str) -> None:
        point = self._assignment.pop(flow_id, None)
        if point is not None:
            self._point_load[point] = max(0, self._point_load.get(point, 1) - 1)
        self._next_due.pop(flow_id, None)
        self._cadence.pop(flow_id, None)
        self._streak.pop(flow_id, None)
        self._last_measured.pop(flow_id, None)
        self.last_observed.pop(flow_id, None)
        self.tracked_since.pop(flow_id, None)
        if self.push is not None:
            self.push.unregister(flow_id)

    # ------------------------------------------------------------------
    # Observations (shared by polls and pushes)
    # ------------------------------------------------------------------

    def _observe(
        self,
        flow_id: str,
        bytes_sent: float,
        remaining_bits: float,
        now: float,
        origin: str,
    ) -> None:
        flow = self._state.get(flow_id)
        if flow is None:
            return
        previous = self._previous.get(flow_id)
        if previous is not None and bytes_sent < previous.bytes_sent:
            # Reordered behind a fresher report; cumulative counters
            # never regress, so this carries no new information.
            self.pushes_stale += 1
            return
        self.observations_total += 1
        self.last_observed[flow_id] = now
        self._unseen_polls.pop(flow_id, None)
        self._state.update_remaining(flow_id, remaining_bits)
        measured: Optional[float] = None
        if previous is not None and now > previous.timestamp:
            measured = (
                (bytes_sent - previous.bytes_sent)
                * 8.0
                / (now - previous.timestamp)
            )
            applied = self._state.update_bw_from_stats(flow_id, measured, now)
            if applied:
                self.measurements_applied += 1
            else:
                self.measurements_suppressed += 1
        self._previous[flow_id] = PollRecord(
            bytes_sent=bytes_sent, timestamp=now
        )
        if origin == "poll" and self.push is not None:
            self.push.note_reported(flow_id, bytes_sent)
        self._classify(flow, measured, now, origin)

    def _classify(
        self,
        flow: TrackedFlow,
        measured: Optional[float],
        now: float,
        origin: str,
    ) -> None:
        """Update the flow's cadence class and schedule its next poll."""
        flow_id = flow.flow_id
        if measured is None:
            # No baseline yet: keep fast until bandwidth can be derived.
            self._streak[flow_id] = 0
            cadence = CADENCE_FAST
        else:
            last = self._last_measured.get(flow_id)
            if last is None:
                self._streak[flow_id] = 0
            elif abs(measured - last) > self.config.hysteresis * max(
                abs(last), _HYSTERESIS_FLOOR_BPS
            ):
                self._streak[flow_id] = 0
            else:
                self._streak[flow_id] = self._streak.get(flow_id, 0) + 1
            self._last_measured[flow_id] = measured
            cadence = (
                CADENCE_SLOW
                if self._streak[flow_id] >= self.config.stable_after
                else CADENCE_FAST
            )
        frozen = (
            flow.freezed
            and math.isfinite(flow.freeze_until)
            and flow.freeze_until > now
        )
        if frozen:
            if flow.freeze_until - now <= self._freeze_guard:
                # Near expiry: the next measurement is the one that
                # re-estimates the flow — make sure it lands promptly.
                cadence = CADENCE_FAST
            else:
                # Deep freeze: UPDATEBW suppresses measurements anyway,
                # so fast polling buys nothing.
                cadence = CADENCE_SLOW
        elif flow.freezed:
            # Freeze expired but no measurement has landed since (this
            # very observation may have been suppressed at exactly the
            # expiry instant): the flow is pending re-estimation, which
            # must not wait out a slow interval.
            cadence = CADENCE_FAST
        self._set_cadence(flow_id, cadence)
        interval = (
            self.poll_interval if cadence == CADENCE_FAST else self.slow_interval
        )
        next_due = now + interval
        if frozen:
            # Never sleep past the freeze expiry re-estimation point.
            next_due = min(
                next_due, max(flow.freeze_until, now + self.poll_interval)
            )
        self._next_due[flow_id] = next_due
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(
                now, "collector.observe", "poll",
                flow=flow_id, origin=origin, cadence=cadence,
                switch=self._assignment.get(flow_id, ""),
            )

    def _set_cadence(self, flow_id: str, cadence: str) -> None:
        old = self._cadence.get(flow_id)
        if old == cadence:
            return
        self._cadence[flow_id] = cadence
        if self.push is None:
            return
        point = self._assignment.get(flow_id)
        if cadence == CADENCE_SLOW and point is not None:
            self._register_push(point, flow_id)
        elif cadence == CADENCE_FAST:
            self.push.unregister(flow_id)

    def _note_unobserved(self, flow_id: str, now: float) -> None:
        """The flow's switch answered but the flow was absent.

        One *missed observation* — the currency unseen-flow expiry is
        counted in.  Slow-cadence flows accrue misses only as fast as
        they are actually looked for, so a stable elephant is never
        expired just because ticks went by.
        """
        self._next_due[flow_id] = now + self.poll_interval
        self._set_cadence(flow_id, CADENCE_FAST)
        if self.expire_unseen_polls <= 0:
            return
        misses = self._unseen_polls.get(flow_id, 0) + 1
        if misses >= self.expire_unseen_polls:
            self._state.remove(flow_id)
            self._unseen_polls.pop(flow_id, None)
            self._forget_flow(flow_id)
            self.flows_expired += 1
        else:
            self._unseen_polls[flow_id] = misses

    # ------------------------------------------------------------------
    # Staleness probes (degraded-mode recovery)
    # ------------------------------------------------------------------

    def _probe_stale_switches(
        self,
        now: float,
        polled: Dict[str, List[str]],
        cycle_messages: int,
        cycle_bytes: int,
    ) -> Tuple[int, int]:
        """Re-probe switches whose stats channel went stale.

        Without this, a switch whose flows were all reassigned away (or
        aborted) would keep a frozen miss counter forever and never
        re-promote after recovery.  An empty targeted request is the
        cheapest possible liveness check.
        """
        for switch_id in sorted(self.switch_missed_polls):
            if self.switch_missed_polls[switch_id] <= 0:
                continue
            if switch_id in polled:
                continue
            if self._tick_index < self._probe_after.get(switch_id, 0):
                continue
            try:
                self._controller.query_flow_stats_for(switch_id, [])
            except SwitchUnreachableError:
                self.poll_errors += 1
                self.switch_missed_polls[switch_id] += 1
                self._account_poll(switch_id, 1, POLL_REQUEST_BYTES)
                cycle_messages += 1
                cycle_bytes += POLL_REQUEST_BYTES
                self._probe_after[switch_id] = (
                    self._tick_index + self.config.probe_failed_every
                )
                continue
            self.switch_missed_polls[switch_id] = 0
            self._probe_after.pop(switch_id, None)
            exchanged = POLL_REQUEST_BYTES + POLL_REPLY_BASE_BYTES
            self._account_poll(switch_id, 2, exchanged)
            cycle_messages += 2
            cycle_bytes += exchanged
        return cycle_messages, cycle_bytes

    # ------------------------------------------------------------------
    # Push reconciliation
    # ------------------------------------------------------------------

    def on_push(self, push: Union[CounterPush, CounterPushBatch]) -> None:
        """Reconcile switch-initiated counter report(s).

        Idempotent by construction: a duplicate or reordered report
        (stale sequence number) is dropped before any state is touched,
        and a fresh one advances the same cumulative-counter record
        polls use, so the same byte delta can never be measured twice.
        A :class:`CounterPushBatch` counts as *one* message (that is the
        whole point of coalescing) but each of its reports reconciles
        through the same per-subscription sequence window.
        """
        if isinstance(push, CounterPushBatch):
            fresh: List[CounterPush] = []
            for report in push.reports:
                key = (report.switch_id, report.flow_id)
                if report.seq <= self._push_seq_seen.get(key, 0):
                    self.pushes_duplicate += 1
                    continue
                self._push_seq_seen[key] = report.seq
                fresh.append(report)
            if not fresh:
                return
            size = (
                PUSH_MESSAGE_BYTES
                + (len(push.reports) - 1) * PUSH_REPORT_BYTES
            )
            self._account_push_message(push.switch_id, size)
            for report in fresh:
                self._apply_push(report)
            return
        key = (push.switch_id, push.flow_id)
        if push.seq <= self._push_seq_seen.get(key, 0):
            self.pushes_duplicate += 1
            return
        self._push_seq_seen[key] = push.seq
        self._account_push_message(push.switch_id, PUSH_MESSAGE_BYTES)
        self._apply_push(push)

    def _account_push_message(self, switch_id: str, size_bytes: int) -> None:
        """Count one channel crossing from ``switch_id``."""
        self.push_messages[switch_id] = (
            self.push_messages.get(switch_id, 0) + 1
        )
        self.push_bytes[switch_id] = (
            self.push_bytes.get(switch_id, 0) + size_bytes
        )
        tel = instrument.TELEMETRY
        if tel is not None:
            labels = {"switch": switch_id}
            tel.count("flowserver_push_messages_total", labels=labels)
            tel.count("flowserver_push_bytes_total", float(size_bytes),
                      labels=labels)

    def _apply_push(self, push: CounterPush) -> None:
        """Apply one seq-fresh report to the observation pipeline."""
        if push.flow_id not in self._state:
            self.pushes_ignored += 1
            return
        record = self._previous.get(push.flow_id)
        if record is not None and push.timestamp < record.timestamp:
            self.pushes_stale += 1
            return
        self.pushes_applied += 1
        # A fresh push is a full observation: it refreshes the counter
        # record and *defers* the flow's next poll via _classify, so the
        # poll schedule and the push channel never double-report.
        self._observe(
            push.flow_id, push.bytes_sent, push.remaining_bits,
            push.timestamp, origin="push",
        )

"""Congestion-aware replica placement co-designed with the Flowserver.

§3.3 leaves this as future work: "We expect that it would be relatively
straightforward to implement a Sinbad-like replica placement strategy by
having the nameserver make the placement decision collaboratively with
the Flowserver."  This module implements it.

A write materializes as a pipeline of flows — writer → primary, then
primary → each secondary — so placement scores candidates by the
estimated max-min share of the *best shortest path* for the flow that
would feed them, computed against the Flowserver's live flow table
(the same arithmetic reads use, §4.2).  Fault-domain constraints match
the evaluation placement: primary anywhere, second replica in the
primary's pod but another rack, third replica in a different pod.

Unlike Sinbad, which works from periodically-sampled end-host counters,
this placement sees the Flowserver's analytically-maintained estimates —
including flows admitted milliseconds ago that no counter sample has
observed yet.
"""

from __future__ import annotations

import math
from random import Random
from typing import List, Optional, Sequence

from repro.core.cost import estimate_path_share
from repro.core.flowserver import Flowserver
from repro.fs.errors import InvalidRequestError
from repro.fs.placement import PlacementPolicy
from repro.net.routing import RoutingTable
from repro.net.topology import Topology


class FlowserverWritePlacement(PlacementPolicy):
    """Nameserver placement policy backed by the Flowserver's network view.

    Parameters
    ----------
    candidates_per_tier:
        How many eligible hosts to score per replica slot (sampling keeps
        placement O(K · paths) instead of O(hosts · paths), the same trick
        Sinbad uses).
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingTable,
        flowserver: Flowserver,
        rng: Random,
        candidates_per_tier: int = 8,
    ):
        if candidates_per_tier < 1:
            raise ValueError("candidates_per_tier must be >= 1")
        self._topo = topology
        self._routing = routing
        self._flowserver = flowserver
        self._rng = rng
        self.candidates_per_tier = candidates_per_tier
        self._capacities = {
            lid: link.capacity_bps for lid, link in topology.links.items()
        }

    # ------------------------------------------------------------------
    # PlacementPolicy interface
    # ------------------------------------------------------------------

    def place(self, replication: int, writer: Optional[str] = None) -> List[str]:
        if replication < 1:
            raise InvalidRequestError(f"replication must be >= 1, got {replication}")
        hosts = sorted(self._topo.hosts)

        primary_pool = [h for h in hosts if h != writer] or hosts
        primary = self._best_destination(writer, primary_pool)
        chosen = [primary]
        if replication == 1:
            return chosen
        primary_host = self._topo.hosts[primary]

        same_pod_other_rack = [
            h.host_id
            for h in self._topo.hosts.values()
            if h.pod == primary_host.pod
            and h.rack != primary_host.rack
            and h.host_id not in chosen
            and h.host_id != writer
        ]
        if same_pod_other_rack:
            chosen.append(self._best_destination(primary, sorted(same_pod_other_rack)))
        if replication == 2:
            return chosen[:2]

        other_pod = [
            h.host_id
            for h in self._topo.hosts.values()
            if h.pod != primary_host.pod
            and h.host_id not in chosen
            and h.host_id != writer
        ]
        if other_pod:
            chosen.append(self._best_destination(primary, sorted(other_pod)))

        while len(chosen) < replication:
            used_racks = {self._topo.hosts[c].rack for c in chosen}
            remaining = sorted(
                h.host_id
                for h in self._topo.hosts.values()
                if h.rack not in used_racks
                and h.host_id not in chosen
                and h.host_id != writer
            ) or sorted(set(hosts) - set(chosen) - {writer}) or sorted(
                set(hosts) - set(chosen)
            )
            if not remaining:
                raise InvalidRequestError(
                    f"cannot place {replication} replicas on {len(hosts)} hosts"
                )
            chosen.append(self._best_destination(primary, remaining))
        return chosen[:replication]

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def _best_destination(self, src: Optional[str], pool: Sequence[str]) -> str:
        """The candidate with the highest estimated write bandwidth from src.

        With no source (unknown writer), candidates are scored by the
        contention on their own edge downlink.
        """
        if not pool:
            raise InvalidRequestError("no eligible host for replica placement")
        sample_size = min(self.candidates_per_tier, len(pool))
        candidates = self._rng.sample(list(pool), sample_size)
        best_host = None
        best_share = -math.inf
        for candidate in sorted(candidates):
            share = self._estimated_share(src, candidate)
            if share > best_share:
                best_share = share
                best_host = candidate
        assert best_host is not None
        return best_host

    def _estimated_share(self, src: Optional[str], dst: str) -> float:
        state = self._flowserver.state
        cache = self._flowserver.link_cache
        if src is None or src == dst:
            edge = self._topo.edge_switch_of(dst)
            downlink = f"{edge}->{dst}"
            share, _ = estimate_path_share(
                [downlink], self._capacities, state, cache=cache
            )
            return share
        best = 0.0
        for path in self._routing.paths(src, dst):
            share, _ = estimate_path_share(
                path.link_ids, self._capacities, state, cache=cache
            )
            best = max(best, share)
        return best

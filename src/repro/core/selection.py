"""Pseudocode 1: SELECTREPLICAANDPATH.

Evaluate every shortest path from every replica to the client, score each
with :func:`repro.core.cost.flow_cost`, pick the cheapest, and commit the
decision: register the new flow at its estimated share and apply ``SETBW``
(estimate + freeze) to every existing flow whose share the newcomer
squeezes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from repro.core.cost import CostBreakdown, LinkShareCache, flow_cost
from repro.core.flow_state import FlowStateTable, TrackedFlow
from repro.net.routing import Path


@dataclass(frozen=True)
class PathChoice:
    """Outcome of scoring one candidate (replica, path) pair."""

    path: Path
    cost: CostBreakdown

    @property
    def replica(self) -> str:
        return self.path.src


def score_candidate_paths(
    candidate_paths: Sequence[Path],
    flow_size_bits: float,
    link_capacity_bps: Mapping[str, float],
    state: FlowStateTable,
    include_existing_flows: bool = True,
    cache: Optional[LinkShareCache] = None,
) -> List[PathChoice]:
    """Score every candidate path; sorted cheapest-first.

    Ties break on higher estimated bandwidth, then lexicographic path id,
    keeping runs deterministic.  One :class:`LinkShareCache` spans the
    whole sweep (callers may pass a longer-lived one): candidates share
    edge uplinks/downlinks heavily, so each distinct per-link water-fill
    runs once instead of once per (replica, path) pair.
    """
    if cache is None:
        cache = LinkShareCache(state)
    choices = [
        PathChoice(
            path=path,
            cost=flow_cost(
                path.link_ids,
                flow_size_bits,
                link_capacity_bps,
                state,
                include_existing_flows=include_existing_flows,
                cache=cache,
            ),
        )
        for path in candidate_paths
    ]
    choices.sort(key=lambda c: (c.cost.total, -c.cost.est_bw_bps, c.path.link_ids))
    return choices


def commit_choice(
    choice: PathChoice,
    flow_id: str,
    flow_size_bits: float,
    state: FlowStateTable,
    now: float,
    job_id: Optional[str] = None,
) -> TrackedFlow:
    """Apply the winning choice to the Flowserver's state (Pseudocode 1 l.9-11).

    Registers the new flow at its estimated share (frozen), then ``SETBW``s
    every existing flow whose bandwidth the cost model predicts will drop.
    """
    tracked = TrackedFlow(
        flow_id=flow_id,
        path_link_ids=choice.path.link_ids,
        size_bits=flow_size_bits,
        remaining_bits=flow_size_bits,
        bw_bps=choice.cost.est_bw_bps,
        job_id=job_id,
    )
    state.add(tracked)
    state.set_bw(flow_id, choice.cost.est_bw_bps, now)
    for existing_id, new_bw in sorted(choice.cost.new_bw_of_existing.items()):
        if existing_id in state:
            state.set_bw(existing_id, new_bw, now)
    return tracked


def select_replica_and_path(
    candidate_paths: Sequence[Path],
    flow_id: str,
    flow_size_bits: float,
    link_capacity_bps: Mapping[str, float],
    state: FlowStateTable,
    now: float,
    include_existing_flows: bool = True,
    job_id: Optional[str] = None,
    cache: Optional[LinkShareCache] = None,
) -> PathChoice:
    """Full SELECTREPLICAANDPATH: score, pick, and commit.

    Raises
    ------
    ValueError
        If no candidate path exists or every candidate has infinite cost.
    """
    if not candidate_paths:
        raise ValueError("no candidate paths to select from")
    choices = score_candidate_paths(
        candidate_paths,
        flow_size_bits,
        link_capacity_bps,
        state,
        include_existing_flows=include_existing_flows,
        cache=cache,
    )
    best = choices[0]
    if math.isinf(best.cost.total):
        raise ValueError("all candidate paths have infinite cost")
    commit_choice(best, flow_id, flow_size_bits, state, now, job_id=job_id)
    return best

"""Replication fan-out planning: chain vs. tree from live link state.

"Extending TCP for Accelerating Replication on Cluster File Systems over
SDNs" observes that the best *shape* for a replication pipeline depends
on current network conditions: a store-and-forward **chain**
(primary → s1 → s2 → …) spreads the load over distinct uplinks but pays
each hop's transfer time in sequence, while a **tree** (here: a one-level
star, primary → every secondary in parallel) finishes in one
generation but contends for the primary's uplink.  This module does the
shape arithmetic; the Flowserver supplies the per-edge bandwidth
estimates (its max-min probe shares over ``NetworkView`` state) and owns
the degraded-mode fallback.

Completion-time model for ``d`` bits with per-edge estimated shares
``b``:

* chain ``p → s1 → … → sk``: store-and-forward, so
  ``t = Σ_hops d / b_hop`` — each hop starts when the previous finished;
* star: the ``k`` relay flows leave the primary concurrently and share
  its uplink, so flow *i* runs at ``min(b_i, B/k)`` with
  ``B = max_i b_i`` (the best single-flow share out of the primary
  bounds what the uplink can offer) and ``t = max_i d / min(b_i, B/k)``.

Ties break toward the chain (the shape legacy appends effectively used),
then lexicographically on the relay order — planning is a pure function
of its inputs, so the same flow state always yields the same plan.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.net.routing import Path

#: (path, estimated share in bit/s) for one relay edge.  ``path`` is
#: ``None`` when the edge should be routed by ECMP at transfer time.
EdgeEstimate = Tuple[Optional[Path], float]

#: Callback the planner uses to price a ``src -> dst`` relay edge.
EdgeEstimator = Callable[[str, str], EdgeEstimate]

#: Chain orderings are enumerated exhaustively up to this many
#: secondaries (4! = 24 candidates); beyond that only the given replica
#: order is considered, keeping planning O(k).
MAX_CHAIN_ENUMERATION = 4


@dataclass(frozen=True)
class RelayNode:
    """One relay target in the fan-out topology.

    ``path`` routes the transfer from this node's *parent* to ``host``
    (``None`` = ECMP at transfer time); ``children`` is where this node
    forwards the append next (non-empty only in chain shapes).
    """

    host: str
    path: Optional[Path]
    est_bw_bps: float
    children: Tuple["RelayNode", ...] = ()

    def subtree_hosts(self) -> Tuple[str, ...]:
        """This node and every descendant, preorder."""
        hosts: List[str] = [self.host]
        for child in self.children:
            hosts.extend(child.subtree_hosts())
        return tuple(hosts)


@dataclass(frozen=True)
class FanoutPlan:
    """A planned write pipeline: push hop plus relay topology.

    ``kind`` is ``"chain"`` / ``"tree"`` for planned shapes, or
    ``"chain-static"`` for the degraded fallback (no estimates, every
    transfer ECMP-routed).
    """

    kind: str
    writer: str
    primary: str
    push_path: Optional[Path]
    push_bw_bps: float
    children: Tuple[RelayNode, ...]
    est_completion_s: float

    def relay_hosts(self) -> Tuple[str, ...]:
        hosts: List[str] = []
        for child in self.children:
            hosts.extend(child.subtree_hosts())
        return tuple(hosts)

    def edges(self) -> Tuple[Tuple[str, str], ...]:
        """Every ``(parent_host, child_host)`` relay hop, preorder.

        The push hop (writer → primary) is excluded — these are the
        relay edges a committed append travels, the ground truth trace
        topology assertions compare span parentage against.
        """
        collected: List[Tuple[str, str]] = []

        def visit(parent: str, node: RelayNode) -> None:
            collected.append((parent, node.host))
            for child in node.children:
                visit(node.host, child)

        for child in self.children:
            visit(self.primary, child)
        return tuple(collected)


def static_chain_plan(
    writer: str, primary: str, secondaries: Sequence[str]
) -> FanoutPlan:
    """The no-information fallback: a chain in replica order, ECMP paths.

    Used when the Flowserver is degraded (stale counters, unreachable
    paths) or absent; also the explicit baseline shape for the
    ``fanout="chain"`` comparison configurations.
    """
    node: Optional[RelayNode] = None
    for host in reversed(list(secondaries)):
        node = RelayNode(
            host=host,
            path=None,
            est_bw_bps=0.0,
            children=(node,) if node is not None else (),
        )
    return FanoutPlan(
        kind="chain-static",
        writer=writer,
        primary=primary,
        push_path=None,
        push_bw_bps=0.0,
        children=(node,) if node is not None else (),
        est_completion_s=math.inf,
    )


def _edge_time(size_bits: float, bw_bps: float) -> float:
    if bw_bps <= 0:
        return math.inf
    return size_bits / bw_bps


def _chain_candidate(
    order: Sequence[str],
    primary: str,
    size_bits: float,
    estimate: EdgeEstimator,
) -> Tuple[float, Tuple[RelayNode, ...]]:
    """Price one chain ordering; returns (relay seconds, topology)."""
    total = 0.0
    parent = primary
    edges: List[Tuple[str, Optional[Path], float]] = []
    for host in order:
        path, bw = estimate(parent, host)
        total += _edge_time(size_bits, bw)
        edges.append((host, path, bw))
        parent = host
    node: Optional[RelayNode] = None
    for host, path, bw in reversed(edges):
        node = RelayNode(
            host=host,
            path=path,
            est_bw_bps=bw,
            children=(node,) if node is not None else (),
        )
    children = (node,) if node is not None else ()
    return total, children


def _star_candidate(
    secondaries: Sequence[str],
    primary: str,
    size_bits: float,
    estimate: EdgeEstimator,
) -> Tuple[float, Tuple[RelayNode, ...]]:
    """Price the one-level tree; returns (relay seconds, topology)."""
    edges: List[Tuple[str, Optional[Path], float]] = []
    for host in secondaries:
        path, bw = estimate(primary, host)
        edges.append((host, path, bw))
    best = max((bw for _, _, bw in edges), default=0.0)
    k = len(edges)
    worst = 0.0
    for _, _, bw in edges:
        rate = min(bw, best / k) if k else bw
        worst = max(worst, _edge_time(size_bits, rate))
    children = tuple(
        RelayNode(host=host, path=path, est_bw_bps=bw)
        for host, path, bw in edges
    )
    return worst, children


def plan_fanout(
    writer: str,
    primary: str,
    secondaries: Sequence[str],
    size_bits: float,
    estimate: EdgeEstimator,
) -> FanoutPlan:
    """Pick the cheapest relay shape for one append.

    Evaluates every chain ordering (up to :data:`MAX_CHAIN_ENUMERATION`
    secondaries) plus the star, each under the completion-time model in
    the module docstring, and returns the minimum.  The push hop
    (writer → primary) is common to every shape and added to all
    estimates; a writer co-located with the primary pushes locally at
    infinite bandwidth.
    """
    if size_bits <= 0:
        raise ValueError(f"append size must be positive, got {size_bits}")
    if writer == primary:
        push_path: Optional[Path] = None
        push_bw = math.inf
        push_time = 0.0
    else:
        push_path, push_bw = estimate(writer, primary)
        push_time = _edge_time(size_bits, push_bw)

    uniq = list(secondaries)
    if not uniq:
        return FanoutPlan(
            kind="chain",
            writer=writer,
            primary=primary,
            push_path=push_path,
            push_bw_bps=push_bw,
            children=(),
            est_completion_s=push_time,
        )

    if len(uniq) <= MAX_CHAIN_ENUMERATION:
        orders: List[Tuple[str, ...]] = [
            tuple(p) for p in itertools.permutations(uniq)
        ]
    else:
        orders = [tuple(uniq)]

    # (relay time, kind rank, deterministic order key, kind, children).
    # Chain ranks before tree so exact ties keep the legacy-like shape.
    candidates: List[
        Tuple[float, int, Tuple[str, ...], str, Tuple[RelayNode, ...]]
    ] = []
    for order in orders:
        relay_time, children = _chain_candidate(
            order, primary, size_bits, estimate
        )
        candidates.append((relay_time, 0, order, "chain", children))
    star_time, star_children = _star_candidate(
        uniq, primary, size_bits, estimate
    )
    candidates.append((star_time, 1, tuple(uniq), "tree", star_children))

    relay_time, _, _, kind, children = min(
        candidates, key=lambda c: (c[0], c[1], c[2])
    )
    return FanoutPlan(
        kind=kind,
        writer=writer,
        primary=primary,
        push_path=push_path,
        push_bw_bps=push_bw,
        children=children,
        est_completion_s=push_time + relay_time,
    )

"""Periodic flow-stats collection (§3.3.3, §4).

Every ``poll_interval`` seconds the collector fetches flow stats from each
edge switch, derives each flow's measured bandwidth from the byte-counter
delta since the previous poll, refreshes remaining sizes, and feeds the
measurements through ``UPDATEBW`` — so frozen flows keep their analytic
estimates until the freeze expires (Pseudocode 2, lines 12-18).

"The measured bandwidth information is used as an instantaneous snapshot of
the network state.  In between measurements, the Flowserver tracks flow add
and drop requests and recomputes an estimate of the path bandwidth of each
flow after each request."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.flow_state import FlowStateTable
from repro.sdn.controller import Controller, SwitchUnreachableError
from repro.sim import instrument
from repro.sim.engine import EventLoop, PeriodicTimer


@dataclass
class PollRecord:
    """Bookkeeping from the previous poll of one flow (for deltas)."""

    bytes_sent: float
    timestamp: float


#: Estimated OpenFlow message sizes (bytes) for poll-volume accounting:
#: an OFPMP_FLOW stats request, the reply's multipart header, and each
#: flow entry in the reply body.  The absolute numbers only matter
#: relatively — they size the monitoring-channel overhead the paper
#: trades against measurement freshness.
POLL_REQUEST_BYTES = 72
POLL_REPLY_BASE_BYTES = 12
POLL_REPLY_PER_FLOW_BYTES = 88


class FlowStatsCollector:
    """Polls edge switches and refreshes the Flowserver's flow state.

    Parameters
    ----------
    poll_interval:
        Seconds between polls; the paper polls at coarse intervals and
        relies on analytic updates in between, so the default is 1 s.
    """

    def __init__(
        self,
        loop: EventLoop,
        controller: Controller,
        state: FlowStateTable,
        poll_interval: float = 1.0,
        auto_start: bool = True,
        expire_unseen_polls: int = 10,
    ):
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        self._loop = loop
        self._controller = controller
        self._state = state
        self.poll_interval = poll_interval
        #: A tracked flow absent from switch stats for this many consecutive
        #: polls is presumed dead (e.g. the dataserver failed before the
        #: transfer started) and dropped, so stale entries cannot distort
        #: cost estimates forever.  0 disables expiry.
        self.expire_unseen_polls = expire_unseen_polls
        self._previous: Dict[str, PollRecord] = {}
        self._unseen_polls: Dict[str, int] = {}
        self.polls_completed = 0
        self.measurements_applied = 0
        self.measurements_suppressed = 0
        self.flows_expired = 0
        #: Fault-injection hook: while True, poll cycles run but no switch
        #: is actually queried (models monitoring-channel loss).
        self.suppress_polls = False
        #: Consecutive failed/suppressed polls per switch; reset to 0 on
        #: every successful poll.  The Flowserver reads this to decide
        #: which paths still have trustworthy counters.  Counting polls
        #: (not wall-clock age) keeps fault-free runs byte-identical: the
        #: collector legitimately idles between bursts, which must not
        #: look like staleness.
        self.switch_missed_polls: Dict[str, int] = {}
        #: Cumulative monitoring-channel volume per switch: OpenFlow
        #: messages exchanged and their estimated bytes.  Requests to
        #: unreachable switches still count (the message left the
        #: controller); suppressed cycles send nothing.
        self.poll_messages: Dict[str, int] = {}
        self.poll_bytes: Dict[str, int] = {}
        self.polls_lost = 0
        self.poll_errors = 0
        self._timer: Optional[PeriodicTimer] = None
        if auto_start:
            self.start()

    def start(self) -> None:
        if self._timer is None or self._timer.stopped:
            self._timer = PeriodicTimer(self._loop, self.poll_interval, self.poll_once)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def consecutive_misses(self, switch_id: str) -> int:
        """How many polls in a row failed to reach ``switch_id``."""
        return self.switch_missed_polls.get(switch_id, 0)

    def poll_once(self) -> None:
        """One collection cycle over every edge switch.

        Unreachable switches (and whole cycles lost to monitoring-channel
        faults) bump per-switch miss counters instead of raising; the
        Flowserver uses those counters to demote the affected paths.
        """
        now = self._loop.now
        seen = set()
        polled_ok: Set[str] = set()
        applied_before = self.measurements_applied
        suppressed_before = self.measurements_suppressed
        cycle_messages = 0
        cycle_bytes = 0
        if self.suppress_polls:
            self.polls_lost += 1
        for switch_id in self._controller.edge_switch_ids():
            if self.suppress_polls:
                self.switch_missed_polls[switch_id] = (
                    self.switch_missed_polls.get(switch_id, 0) + 1
                )
                continue
            try:
                reply = self._controller.query_flow_stats(switch_id)
            except SwitchUnreachableError:
                self.poll_errors += 1
                self.switch_missed_polls[switch_id] = (
                    self.switch_missed_polls.get(switch_id, 0) + 1
                )
                # The request left the controller even though no reply came.
                self._account_poll(switch_id, 1, POLL_REQUEST_BYTES)
                cycle_messages += 1
                cycle_bytes += POLL_REQUEST_BYTES
                continue
            self.switch_missed_polls[switch_id] = 0
            polled_ok.add(switch_id)
            exchanged = (
                POLL_REQUEST_BYTES + POLL_REPLY_BASE_BYTES
                + POLL_REPLY_PER_FLOW_BYTES * len(reply.flows)
            )
            self._account_poll(switch_id, 2, exchanged)
            cycle_messages += 2
            cycle_bytes += exchanged
            for stat in reply.flows:
                if stat.flow_id not in self._state:
                    # Not a tracked (Mayflower-scheduled) flow; ignore,
                    # exactly as the Flowserver only models its own flows.
                    continue
                seen.add(stat.flow_id)
                self._state.update_remaining(stat.flow_id, stat.remaining_bits)
                previous = self._previous.get(stat.flow_id)
                if previous is not None and now > previous.timestamp:
                    measured_bps = (
                        (stat.bytes_sent - previous.bytes_sent)
                        * 8.0
                        / (now - previous.timestamp)
                    )
                    applied = self._state.update_bw_from_stats(
                        stat.flow_id, measured_bps, now
                    )
                    if applied:
                        self.measurements_applied += 1
                    else:
                        self.measurements_suppressed += 1
                self._previous[stat.flow_id] = PollRecord(
                    bytes_sent=stat.bytes_sent, timestamp=now
                )
        # Drop poll history for flows that disappeared from the network.
        for flow_id in list(self._previous):
            if flow_id not in seen and flow_id not in self._state:
                del self._previous[flow_id]
        # Expire tracked flows that never show up in switch stats (their
        # transfer presumably died before starting).  A flow only counts
        # as unseen when the switch that would report it was successfully
        # polled — a monitoring outage must not evict live flows.
        if self.expire_unseen_polls > 0:
            topo = self._controller.network.topology
            for flow_id in list(self._state.flows):
                if flow_id in seen:
                    self._unseen_polls.pop(flow_id, None)
                    continue
                tracked = self._state.get(flow_id)
                if tracked is not None and tracked.path_link_ids:
                    source_switch = topo.links[tracked.path_link_ids[0]].dst
                    if source_switch not in polled_ok:
                        continue
                misses = self._unseen_polls.get(flow_id, 0) + 1
                if misses >= self.expire_unseen_polls:
                    self._state.remove(flow_id)
                    self._unseen_polls.pop(flow_id, None)
                    self.flows_expired += 1
                else:
                    self._unseen_polls[flow_id] = misses
        for flow_id in list(self._unseen_polls):
            if flow_id not in self._state:
                del self._unseen_polls[flow_id]
        self.polls_completed += 1
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(
                now, "collector.poll", "poll",
                tracked=len(self._state), seen=len(seen),
                lost=self.suppress_polls,
            )
            tel.count("collector_polls_total")
            tel.metrics.counter("collector_measurements_applied_total").inc(
                float(self.measurements_applied - applied_before)
            )
            tel.metrics.counter("collector_measurements_suppressed_total").inc(
                float(self.measurements_suppressed - suppressed_before)
            )
            if cycle_messages:
                tel.tracer.counter(
                    now, "flowserver.poll.messages",
                    {"messages": float(cycle_messages),
                     "bytes": float(cycle_bytes)},
                    track="poll",
                )
        # Go idle once nothing is tracked so a simulation with no pending
        # work can drain its event queue; the Flowserver restarts polling
        # when it registers the next flow.
        if not self._state.flows:
            self.stop()

    def _account_poll(self, switch_id: str, messages: int, nbytes: int) -> None:
        """Attribute one poll exchange's message volume to a switch."""
        self.poll_messages[switch_id] = (
            self.poll_messages.get(switch_id, 0) + messages
        )
        self.poll_bytes[switch_id] = self.poll_bytes.get(switch_id, 0) + nbytes
        tel = instrument.TELEMETRY
        if tel is not None:
            labels = {"switch": switch_id}
            tel.count("flowserver_poll_messages_total", float(messages),
                      labels=labels)
            tel.count("flowserver_poll_bytes_total", float(nbytes),
                      labels=labels)

    def forget(self, flow_id: str) -> None:
        """Drop poll history for a removed flow (called on FlowRemoved)."""
        self._previous.pop(flow_id, None)
        self._unseen_polls.pop(flow_id, None)

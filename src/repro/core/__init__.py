"""Mayflower's core contribution: the Flowserver.

The Flowserver runs inside the SDN controller and couples filesystem
decisions (which replica to read) with network decisions (which path to
route the read over).  This package implements:

* :mod:`repro.core.flow_state` — the Flowserver's model of every
  Mayflower-related flow, including the *update-freeze* state from
  Pseudocode 2;
* :mod:`repro.core.cost` — the path cost function of Eq. 2: the new flow's
  completion time plus the induced completion-time increase of existing
  flows, computed with per-link max-min fair-share estimates;
* :mod:`repro.core.selection` — Pseudocode 1: evaluate every
  (replica, shortest-path) pair and commit the cheapest;
* :mod:`repro.core.multireplica` — §4.3: split a read across two replicas
  when the combined share beats the single best flow;
* :mod:`repro.core.stats` — the periodic flow-stats collector that refreshes
  bandwidth/remaining-size estimates from edge-switch counters;
* :mod:`repro.core.adaptive_stats` — the opt-in adaptive collector:
  balanced per-flow polling points, per-flow fast/slow cadence, and
  switch-side delta push (``poll_mode="adaptive"``);
* :mod:`repro.core.flowserver` — the service tying it all together;
* :mod:`repro.core.domains` — the sharded control plane's per-pod
  :class:`DomainFlowserver` (a Flowserver scoped to one pod's links);
* :mod:`repro.core.coordinator` — the :class:`GlobalCoordinator` that
  places inter-pod reads from per-domain capacity summaries.
"""

from repro.core.adaptive_stats import AdaptiveStatsCollector, AdaptiveStatsConfig
from repro.core.coordinator import GlobalCoordinator
from repro.core.cost import CostBreakdown, estimate_path_share, flow_cost
from repro.core.domains import (
    DomainFlowserver,
    DomainSummary,
    build_domain_flowservers,
)
from repro.core.flow_state import FlowStateTable, TrackedFlow
from repro.core.flowserver import Assignment, Flowserver, FlowserverConfig, SelectionResult
from repro.core.multireplica import MultiReplicaPlanner
from repro.core.selection import PathChoice, select_replica_and_path
from repro.core.stats import FlowStatsCollector
from repro.core.write_placement import FlowserverWritePlacement

__all__ = [
    "AdaptiveStatsCollector",
    "AdaptiveStatsConfig",
    "Assignment",
    "CostBreakdown",
    "DomainFlowserver",
    "DomainSummary",
    "FlowStateTable",
    "FlowStatsCollector",
    "Flowserver",
    "FlowserverConfig",
    "FlowserverWritePlacement",
    "GlobalCoordinator",
    "MultiReplicaPlanner",
    "PathChoice",
    "SelectionResult",
    "TrackedFlow",
    "build_domain_flowservers",
    "estimate_path_share",
    "flow_cost",
    "select_replica_and_path",
]

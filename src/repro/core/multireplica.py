"""§4.3 — Reading from multiple replicas in parallel.

A read job is split into two subflows only when the combined estimated
bandwidth of the subflows beats the single best flow.  The procedure
mirrors the paper exactly:

1. pick ``p1`` with the standard replica–path selection (share ``b1``);
2. *tentatively* commit ``f1`` and run the selection again for a second
   subflow ``f2``, restricted to **different replicas** (share ``b2``);
   committing ``f2`` may squeeze ``f1`` down to ``b1'``;
3. if ``b1' + b2 > b1`` keep both and split the read so the subflows finish
   together (``S_i = d * b_i / b``); otherwise roll the tentative state
   back and use ``p1`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.cost import LinkShareCache
from repro.core.flow_state import FlowStateTable
from repro.core.selection import PathChoice, commit_choice, score_candidate_paths
from repro.net.routing import Path


@dataclass(frozen=True)
class SubflowPlan:
    """One subflow of a (possibly split) read: where from, how much, how fast."""

    flow_id: str
    choice: PathChoice
    size_bits: float
    est_bw_bps: float

    @property
    def replica(self) -> str:
        return self.choice.replica


class MultiReplicaPlanner:
    """Plans single- or dual-replica reads against a flow state table.

    Parameters
    ----------
    improvement_factor:
        The combined subflow bandwidth must exceed ``b1 *
        improvement_factor`` to accept a split (1.0 reproduces the paper's
        strict improvement test).
    """

    def __init__(self, improvement_factor: float = 1.0):
        if improvement_factor < 1.0:
            raise ValueError("improvement_factor must be >= 1.0")
        self.improvement_factor = improvement_factor

    def plan(
        self,
        candidate_paths: Sequence[Path],
        flow_ids: Tuple[str, str],
        flow_size_bits: float,
        link_capacity_bps: Mapping[str, float],
        state: FlowStateTable,
        now: float,
        include_existing_flows: bool = True,
        job_id: Optional[str] = None,
        cache: Optional[LinkShareCache] = None,
    ) -> List[SubflowPlan]:
        """Return one or two committed subflow plans for the read.

        ``flow_ids`` supplies (pre-allocated) ids for the up-to-two
        subflows.  On return the state table already tracks the chosen
        flows with their final sizes and freezes applied.

        The same ``cache`` serves both sweeps: committing ``f1`` bumps the
        state-table version, so the second sweep starts cold by
        construction and never sees pre-commit allocations.
        """
        if not candidate_paths:
            raise ValueError("no candidate paths to select from")
        fid1, fid2 = flow_ids

        choices = score_candidate_paths(
            candidate_paths,
            flow_size_bits,
            link_capacity_bps,
            state,
            include_existing_flows=include_existing_flows,
            cache=cache,
        )
        first = choices[0]
        b1 = first.cost.est_bw_bps
        if b1 <= 0:
            raise ValueError("best candidate path has zero estimated bandwidth")

        # Commit f1: it is the chosen flow in both the split and non-split
        # outcomes, so its squeeze of existing flows stands either way.
        # Scoring f2 below never mutates state, so rejecting the split
        # needs no rollback beyond simply not committing f2.
        commit_choice(first, fid1, flow_size_bits, state, now, job_id=job_id)

        second_candidates = [p for p in candidate_paths if p.src != first.replica]
        if not second_candidates:
            return [SubflowPlan(fid1, first, flow_size_bits, b1)]

        second_choices = score_candidate_paths(
            second_candidates,
            flow_size_bits,
            link_capacity_bps,
            state,
            include_existing_flows=include_existing_flows,
            cache=cache,
        )
        second = second_choices[0]
        b2 = second.cost.est_bw_bps
        # f2 joining may squeeze f1 down to b1'.
        b1_prime = second.cost.new_bw_of_existing.get(fid1, b1)

        combined = b1_prime + b2
        if b2 <= 0 or combined <= b1 * self.improvement_factor:
            # Roll back nothing for f1 (it stays the committed single flow).
            return [SubflowPlan(fid1, first, flow_size_bits, b1)]

        commit_choice(second, fid2, flow_size_bits, state, now, job_id=job_id)

        # Split sizes so subflows finish together: S_i = d * b_i / b.
        size1 = flow_size_bits * b1_prime / combined
        size2 = flow_size_bits - size1

        flow1 = state.flows[fid1]
        flow1.size_bits = size1
        flow1.remaining_bits = size1
        state.set_bw(fid1, b1_prime, now)

        flow2 = state.flows[fid2]
        flow2.size_bits = size2
        flow2.remaining_bits = size2
        state.set_bw(fid2, b2, now)

        return [
            SubflowPlan(fid1, first, size1, b1_prime),
            SubflowPlan(fid2, second, size2, b2),
        ]

"""The Mayflower path cost model (Eq. 1 and 2, §4.2).

For a candidate path *p* and a read of *d* bits::

    Cost(p) = d / b_j  +  Σ_{f ∈ F_p} [ r_f / b'_f  −  r_f / b_f ]

* ``b_j`` — estimated max-min share of the new flow on *p*: on every link
  the probe (infinite demand) is water-filled against the link's existing
  flows whose demands are their current bandwidth estimates; the probe's
  share is its allocation at the bottleneck link
  (:func:`estimate_path_share`).
* ``b'_f`` — the new bandwidth of existing flow *f* once a flow with demand
  ``b_j`` joins the links of *p*: on every shared link, water-fill existing
  demands plus the ``b_j``-demand newcomer and take *f*'s worst allocation;
  a flow never speeds up from a newcomer, so ``b'_f ≤ b_f``
  (:func:`new_bandwidth_of_existing`).

The worked example of Fig. 2 (costs 4.25 vs 3.6, and 2.4 with a 20 Mbps
link) is reproduced exactly by this module — see
``tests/core/test_worked_example.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.flow_state import FlowStateTable, TrackedFlow
from repro.net.fairshare import single_link_fair_allocation


@dataclass(frozen=True)
class CostBreakdown:
    """Cost of placing a new flow on one candidate path.

    Attributes
    ----------
    total:
        ``Cost(p)`` — seconds of aggregate completion time added.
    new_flow_time:
        First term: the new flow's own expected completion time.
    existing_flows_penalty:
        Second term: summed completion-time increase of existing flows.
    est_bw_bps:
        ``b_j`` — the new flow's estimated max-min share on this path.
    bottleneck_link_id:
        Link that capped ``b_j``.
    new_bw_of_existing:
        Per-flow ``b'_f`` for every existing flow whose bandwidth changes
        (flows whose share is untouched are omitted).
    """

    total: float
    new_flow_time: float
    existing_flows_penalty: float
    est_bw_bps: float
    bottleneck_link_id: Optional[str]
    new_bw_of_existing: Mapping[str, float] = field(default_factory=dict)


def estimate_path_share(
    path_link_ids: Sequence[str],
    link_capacity_bps: Mapping[str, float],
    state: FlowStateTable,
) -> Tuple[float, Optional[str]]:
    """``MAXMINSHARE``: the probe's estimated rate along one path.

    Returns ``(b_j, bottleneck_link_id)``.
    """
    best = math.inf
    bottleneck: Optional[str] = None
    for link_id in path_link_ids:
        capacity = link_capacity_bps[link_id]
        demands = state.link_demands(link_id)
        allocation = single_link_fair_allocation(capacity, demands + [math.inf])
        share = allocation[-1]
        if share < best:
            best = share
            bottleneck = link_id
    return best, bottleneck


def new_bandwidth_of_existing(
    flow: TrackedFlow,
    path_link_ids: Sequence[str],
    new_flow_demand_bps: float,
    link_capacity_bps: Mapping[str, float],
    state: FlowStateTable,
) -> float:
    """``NEWBANDWIDTH``: flow ``f``'s share after the newcomer joins.

    Evaluated on every link the flow shares with the candidate path; the
    flow's new share is its worst allocation across those links, and never
    exceeds its current estimate.
    """
    shared = [lid for lid in path_link_ids if lid in flow.path_link_ids]
    if not shared:
        return flow.bw_bps
    worst = flow.bw_bps
    for link_id in shared:
        capacity = link_capacity_bps[link_id]
        members = state.flows_on_link(link_id)
        demands = [m.bw_bps for m in members] + [new_flow_demand_bps]
        allocation = single_link_fair_allocation(capacity, demands)
        index = next(i for i, m in enumerate(members) if m.flow_id == flow.flow_id)
        worst = min(worst, allocation[index])
    return worst


def flow_cost(
    path_link_ids: Sequence[str],
    flow_size_bits: float,
    link_capacity_bps: Mapping[str, float],
    state: FlowStateTable,
    include_existing_flows: bool = True,
    est_bw_bps: Optional[float] = None,
) -> CostBreakdown:
    """``FLOWCOST``: evaluate Eq. 2 for one candidate path.

    Parameters
    ----------
    include_existing_flows:
        Ablation hook — when ``False`` the second term of Eq. 2 is dropped
        and the cost degenerates to the greedy
        maximize-my-own-bandwidth policy the paper argues against.
    est_bw_bps:
        Pre-computed ``b_j`` (e.g. from :func:`estimate_path_share`);
        computed on the fly when omitted.
    """
    if flow_size_bits <= 0:
        raise ValueError(f"flow size must be positive, got {flow_size_bits}")

    if est_bw_bps is None:
        est_bw_bps, bottleneck = estimate_path_share(
            path_link_ids, link_capacity_bps, state
        )
    else:
        _, bottleneck = estimate_path_share(path_link_ids, link_capacity_bps, state)

    if est_bw_bps <= 0:
        return CostBreakdown(
            total=math.inf,
            new_flow_time=math.inf,
            existing_flows_penalty=0.0,
            est_bw_bps=0.0,
            bottleneck_link_id=bottleneck,
        )

    new_flow_time = flow_size_bits / est_bw_bps
    penalty = 0.0
    changed: Dict[str, float] = {}

    if include_existing_flows:
        for flow in state.flows_on_path(path_link_ids):
            cur_bw = flow.bw_bps
            new_bw = new_bandwidth_of_existing(
                flow, path_link_ids, est_bw_bps, link_capacity_bps, state
            )
            if new_bw >= cur_bw:
                continue
            changed[flow.flow_id] = new_bw
            if new_bw <= 0:
                penalty = math.inf
                break
            if cur_bw > 0:
                penalty += flow.remaining_bits / new_bw - flow.remaining_bits / cur_bw

    return CostBreakdown(
        total=new_flow_time + penalty,
        new_flow_time=new_flow_time,
        existing_flows_penalty=penalty,
        est_bw_bps=est_bw_bps,
        bottleneck_link_id=bottleneck,
        new_bw_of_existing=changed,
    )

"""The Mayflower path cost model (Eq. 1 and 2, §4.2).

For a candidate path *p* and a read of *d* bits::

    Cost(p) = d / b_j  +  Σ_{f ∈ F_p} [ r_f / b'_f  −  r_f / b_f ]

* ``b_j`` — estimated max-min share of the new flow on *p*: on every link
  the probe (infinite demand) is water-filled against the link's existing
  flows whose demands are their current bandwidth estimates; the probe's
  share is its allocation at the bottleneck link
  (:func:`estimate_path_share`).
* ``b'_f`` — the new bandwidth of existing flow *f* once a flow with demand
  ``b_j`` joins the links of *p*: on every shared link, water-fill existing
  demands plus the ``b_j``-demand newcomer and take *f*'s worst allocation;
  a flow never speeds up from a newcomer, so ``b'_f ≤ b_f``
  (:func:`new_bandwidth_of_existing`).

The worked example of Fig. 2 (costs 4.25 vs 3.6, and 2.4 with a 20 Mbps
link) is reproduced exactly by this module — see
``tests/core/test_worked_example.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.flow_state import FlowStateTable, TrackedFlow
from repro.net.fairshare import single_link_fair_allocation


class LinkShareCache:
    """Memoised per-link water-filling over one flow-state snapshot.

    A candidate sweep (Pseudocode 1) evaluates every (replica, shortest
    path) pair, and candidate paths overlap heavily — all paths out of
    one replica share its edge uplink, all paths into the client share
    its downlink.  Historically every candidate re-ran
    :func:`~repro.net.fairshare.single_link_fair_allocation` per link
    from scratch; this cache computes each distinct (link, newcomer
    demand) allocation once and replays it for every other candidate
    touching that link.

    Validity is keyed on :attr:`FlowStateTable.version`: any mutation of
    the table (membership, ``SETBW``/``UPDATEBW``/rollback) bumps the
    version and the next lookup drops every memo.  The cache therefore
    never serves stale allocations, and a single long-lived instance (the
    Flowserver owns one) is as correct as a fresh cache per sweep.

    Returned values are exactly what the uncached code computed — same
    inputs, same routine — so cached and uncached sweeps are
    bit-identical.
    """

    def __init__(self, state: FlowStateTable):
        self._state = state
        self._version = state.version
        self._members: Dict[str, List[TrackedFlow]] = {}
        self._demands: Dict[str, List[float]] = {}
        self._index: Dict[str, Dict[str, int]] = {}
        self._probe: Dict[Tuple[str, float], float] = {}
        self._newcomer: Dict[Tuple[str, float, float], List[float]] = {}
        #: Allocation lookups served from memo / computed fresh.
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of allocation lookups served from the memo."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _sync(self) -> None:
        if self._state.version != self._version:
            self._members.clear()
            self._demands.clear()
            self._index.clear()
            self._probe.clear()
            self._newcomer.clear()
            self._version = self._state.version

    def members(self, link_id: str) -> List[TrackedFlow]:
        """Tracked flows on a link (sorted), cached for the sweep."""
        self._sync()
        got = self._members.get(link_id)
        if got is None:
            got = self._state.flows_on_link(link_id)
            self._members[link_id] = got
            self._demands[link_id] = [f.bw_bps for f in got]
        return got

    def demands(self, link_id: str) -> List[float]:
        """Current bandwidth estimates of the flows on a link, cached."""
        self.members(link_id)
        return self._demands[link_id]

    def member_index(self, link_id: str, flow_id: str) -> int:
        """Position of ``flow_id`` in :meth:`members` order."""
        self._sync()
        index = self._index.get(link_id)
        if index is None:
            index = {f.flow_id: i for i, f in enumerate(self.members(link_id))}
            self._index[link_id] = index
        return index[flow_id]

    def probe_share(self, link_id: str, capacity_bps: float) -> float:
        """The infinite-demand probe's allocation on one link (§4.2)."""
        self._sync()
        key = (link_id, capacity_bps)
        share = self._probe.get(key)
        if share is None:
            self.misses += 1
            allocation = single_link_fair_allocation(
                capacity_bps, self.demands(link_id) + [math.inf]
            )
            share = allocation[-1]
            self._probe[key] = share
        else:
            self.hits += 1
        return share

    def newcomer_allocation(
        self, link_id: str, capacity_bps: float, newcomer_demand_bps: float
    ) -> List[float]:
        """Water-fill of a link's flows plus one newcomer with a finite
        demand; allocation order is :meth:`members` order, newcomer last."""
        self._sync()
        key = (link_id, capacity_bps, newcomer_demand_bps)
        allocation = self._newcomer.get(key)
        if allocation is None:
            self.misses += 1
            allocation = single_link_fair_allocation(
                capacity_bps, self.demands(link_id) + [newcomer_demand_bps]
            )
            self._newcomer[key] = allocation
        else:
            self.hits += 1
        return allocation


@dataclass(frozen=True)
class CostBreakdown:
    """Cost of placing a new flow on one candidate path.

    Attributes
    ----------
    total:
        ``Cost(p)`` — seconds of aggregate completion time added.
    new_flow_time:
        First term: the new flow's own expected completion time.
    existing_flows_penalty:
        Second term: summed completion-time increase of existing flows.
    est_bw_bps:
        ``b_j`` — the new flow's estimated max-min share on this path.
    bottleneck_link_id:
        Link that capped ``b_j``.
    new_bw_of_existing:
        Per-flow ``b'_f`` for every existing flow whose bandwidth changes
        (flows whose share is untouched are omitted).
    """

    total: float
    new_flow_time: float
    existing_flows_penalty: float
    est_bw_bps: float
    bottleneck_link_id: Optional[str]
    new_bw_of_existing: Mapping[str, float] = field(default_factory=dict)


def estimate_path_share(
    path_link_ids: Sequence[str],
    link_capacity_bps: Mapping[str, float],
    state: FlowStateTable,
    cache: Optional[LinkShareCache] = None,
) -> Tuple[float, Optional[str]]:
    """``MAXMINSHARE``: the probe's estimated rate along one path.

    Returns ``(b_j, bottleneck_link_id)``.  ``cache`` shares per-link
    allocations across the candidate sweep; omitted, a transient cache
    still deduplicates repeated links within this one path.
    """
    if cache is None:
        cache = LinkShareCache(state)
    best = math.inf
    bottleneck: Optional[str] = None
    for link_id in path_link_ids:
        share = cache.probe_share(link_id, link_capacity_bps[link_id])
        if share < best:
            best = share
            bottleneck = link_id
    return best, bottleneck


def new_bandwidth_of_existing(
    flow: TrackedFlow,
    path_link_ids: Sequence[str],
    new_flow_demand_bps: float,
    link_capacity_bps: Mapping[str, float],
    state: FlowStateTable,
    cache: Optional[LinkShareCache] = None,
) -> float:
    """``NEWBANDWIDTH``: flow ``f``'s share after the newcomer joins.

    Evaluated on every link the flow shares with the candidate path; the
    flow's new share is its worst allocation across those links, and never
    exceeds its current estimate.  The (link, newcomer-demand) water-fill
    is memoised in ``cache``, so every other existing flow on the same
    link reads its own slot from the same allocation.
    """
    if cache is None:
        cache = LinkShareCache(state)
    shared = [lid for lid in path_link_ids if lid in flow.path_link_ids]
    if not shared:
        return flow.bw_bps
    worst = flow.bw_bps
    for link_id in shared:
        allocation = cache.newcomer_allocation(
            link_id, link_capacity_bps[link_id], new_flow_demand_bps
        )
        worst = min(worst, allocation[cache.member_index(link_id, flow.flow_id)])
    return worst


def flow_cost(
    path_link_ids: Sequence[str],
    flow_size_bits: float,
    link_capacity_bps: Mapping[str, float],
    state: FlowStateTable,
    include_existing_flows: bool = True,
    est_bw_bps: Optional[float] = None,
    cache: Optional[LinkShareCache] = None,
) -> CostBreakdown:
    """``FLOWCOST``: evaluate Eq. 2 for one candidate path.

    Parameters
    ----------
    include_existing_flows:
        Ablation hook — when ``False`` the second term of Eq. 2 is dropped
        and the cost degenerates to the greedy
        maximize-my-own-bandwidth policy the paper argues against.
    est_bw_bps:
        Pre-computed ``b_j`` (e.g. from :func:`estimate_path_share`);
        computed on the fly when omitted.
    cache:
        Shared :class:`LinkShareCache` for the sweep; a private one is
        built when omitted (single-path call sites).
    """
    if flow_size_bits <= 0:
        raise ValueError(f"flow size must be positive, got {flow_size_bits}")
    if cache is None:
        cache = LinkShareCache(state)

    if est_bw_bps is None:
        est_bw_bps, bottleneck = estimate_path_share(
            path_link_ids, link_capacity_bps, state, cache=cache
        )
    else:
        _, bottleneck = estimate_path_share(
            path_link_ids, link_capacity_bps, state, cache=cache
        )

    if est_bw_bps <= 0:
        return CostBreakdown(
            total=math.inf,
            new_flow_time=math.inf,
            existing_flows_penalty=0.0,
            est_bw_bps=0.0,
            bottleneck_link_id=bottleneck,
        )

    new_flow_time = flow_size_bits / est_bw_bps
    penalty = 0.0
    changed: Dict[str, float] = {}

    if include_existing_flows:
        for flow in state.flows_on_path(path_link_ids):
            cur_bw = flow.bw_bps
            new_bw = new_bandwidth_of_existing(
                flow, path_link_ids, est_bw_bps, link_capacity_bps, state,
                cache=cache,
            )
            if new_bw >= cur_bw:
                continue
            changed[flow.flow_id] = new_bw
            if new_bw <= 0:
                penalty = math.inf
                break
            if cur_bw > 0:
                penalty += flow.remaining_bits / new_bw - flow.remaining_bits / cur_bw

    return CostBreakdown(
        total=new_flow_time + penalty,
        new_flow_time=new_flow_time,
        existing_flows_penalty=penalty,
        est_bw_bps=est_bw_bps,
        bottleneck_link_id=bottleneck,
        new_bw_of_existing=changed,
    )

"""The global coordinator for the sharded control plane.

With one :class:`~repro.core.domains.DomainFlowserver` per pod, some
component must still answer the cross-pod questions: *which pod should
this client read from, and over which core uplink?*  The
:class:`GlobalCoordinator` is that component, and it is deliberately
thin — instead of replicating the monolith's per-link state it composes
per-domain :class:`~repro.core.domains.DomainSummary` digests (aggregate
uplink/downlink capacity plus committed inter-pod bandwidth per
destination pod) and scores candidate pods by pod-pair headroom.  The
work per selection is O(pods + candidate paths), independent of the
number of links or tracked flows, which is where the ≥3x decision
throughput at 1024 hosts comes from.

Division of labour per request:

* client-local / intra-pod reads delegate wholesale to the client pod's
  domain — the full Mayflower cost model runs there, unchanged;
* inter-pod reads are placed here from summaries, then *registered* with
  the source (replica-side) domain so its collector measures the flow
  and its future intra-pod selections see the uplink load;
* replication fan-out plans delegate to the primary replica's domain
  (domains hold the full routing table, so relay trees may span pods).

The coordinator also owns the sharded control plane's failure story:
when it is partitioned away (``coordinator_partition`` fault, flipping
:attr:`partitioned`), inter-pod reads degrade to the same salted-ECMP
spread the Flowserver uses when its stats go stale — drawn from a
separate hasher and sequence so fault-free runs consume nothing — while
intra-pod placement continues at full fidelity inside each domain.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.domains import DomainFlowserver, DomainSummary
from repro.core.fanout import FanoutPlan
from repro.core.flow_state import TrackedFlow
from repro.core.flowserver import (
    Assignment,
    FlowserverConfig,
    SelectionResult,
)
from repro.net.ecmp import EcmpHasher
from repro.net.routing import Path, RoutingTable
from repro.sdn.controller import Controller
from repro.sdn.openflow import FlowRemoved
from repro.sim import instrument


class GlobalCoordinator:
    """Thin inter-pod placement layer over per-pod Flowserver domains.

    Exposes the same RPC surface as the monolithic Flowserver
    (``select`` / ``select_path_only`` / ``plan_replication_fanout``),
    so clients, read planners and the experiment runner are agnostic to
    whether they talk to a monolith or a sharded control plane.
    """

    def __init__(
        self,
        controller: Controller,
        routing: RoutingTable,
        domains: Dict[str, DomainFlowserver],
        config: Optional[FlowserverConfig] = None,
    ) -> None:
        self._controller = controller
        self._routing = routing
        self.config = config or FlowserverConfig()
        topology = controller.network.topology
        missing = sorted(set(topology.pods()) - set(domains))
        if missing:
            raise ValueError(f"no domain for pods: {missing}")
        self.domains: Dict[str, DomainFlowserver] = dict(
            sorted(domains.items())
        )
        self._loop = controller.network.loop
        self._pod_of_host = {
            host_id: host.pod for host_id, host in topology.hosts.items()
        }
        self._capacities = {
            lid: link.capacity_bps for lid, link in topology.links.items()
        }
        #: ``coordinator_partition`` fault flag: while set, inter-pod
        #: selections bypass summary composition (the summaries would be
        #: unreachable) and fall back to salted ECMP.
        self.partitioned = False
        # Coordinator-placed flow bookkeeping: flow id -> (src pod,
        # dst pod, link ids), unwound on FlowRemoved so pair-flow and
        # link-load pressure decay with the flows that caused it.
        self._placed: Dict[str, Tuple[str, str, Tuple[str, ...]]] = {}
        self._pair_flows: Dict[Tuple[str, str], int] = {}
        self._link_load: Dict[str, int] = {}
        self._flow_seq = itertools.count()
        self._request_seq = itertools.count()
        # Same degraded-mode discipline as the Flowserver: a dedicated
        # hasher and sequence, drawn only when actually degraded, keep
        # fault-free runs bit-identical.
        self._degraded_hasher = EcmpHasher(salt=self.config.degraded_ecmp_salt)
        self._ecmp_seq = itertools.count()
        # Placement telemetry.
        self.requests_served = 0
        self.intra_pod_delegations = 0
        self.inter_pod_selections = 0
        self.degraded_selections = 0
        self.fanout_requests = 0
        controller.add_flow_removed_listener(self._on_flow_removed)
        instrument.notify_component("coordinator", self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop every domain's collector (idempotent)."""
        for domain in self.domains.values():
            domain.close()

    def __enter__(self) -> "GlobalCoordinator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # RPC surface (Flowserver-compatible)
    # ------------------------------------------------------------------

    def select(
        self,
        client: str,
        replicas: Sequence[str],
        size_bits: float,
        job_id: Optional[str] = None,
    ) -> SelectionResult:
        """Select replica(s) and path(s) for a read request.

        Intra-pod requests (any replica in the client's pod, including
        the client itself) delegate to the client pod's domain; true
        inter-pod requests are placed from composed domain summaries.
        """
        if not replicas:
            raise ValueError("a read request needs at least one replica")
        if size_bits <= 0:
            raise ValueError(f"read size must be positive, got {size_bits}")
        client_pod = self._pod_of_host.get(client)
        if client_pod is None:
            raise ValueError(f"unknown client host {client!r}")
        self.requests_served += 1

        local = [r for r in replicas if self._pod_of_host.get(r) == client_pod]
        if local:
            self.intra_pod_delegations += 1
            self._count("coordinator_intra_pod_total")
            return self.domains[client_pod].select(
                client, local, size_bits, job_id=job_id
            )

        request_id = job_id or f"greq{next(self._request_seq)}"
        if self.partitioned:
            return self._fallback_select(request_id, client, replicas, size_bits)
        return self._summary_select(
            request_id, client, client_pod, replicas, size_bits
        )

    def select_path_only(
        self,
        client: str,
        replica: str,
        size_bits: float,
        job_id: Optional[str] = None,
    ) -> SelectionResult:
        """Path selection for a pre-chosen replica (baseline mode)."""
        return self.select(client, [replica], size_bits, job_id=job_id)

    def plan_replication_fanout(
        self,
        writer: str,
        replicas: Sequence[str],
        size_bits: float,
        job_id: Optional[str] = None,
    ) -> FanoutPlan:
        """Delegate fan-out planning to the primary replica's domain.

        Domains hold the full routing table, so a relay tree spanning
        pods plans fine; the primary's domain is the one whose collector
        will watch the push flow, making it the natural owner.
        """
        if not replicas:
            raise ValueError("an append needs at least one replica")
        primary_pod = self._pod_of_host.get(replicas[0])
        if primary_pod is None:
            raise ValueError(f"unknown primary host {replicas[0]!r}")
        self.fanout_requests += 1
        return self.domains[primary_pod].plan_replication_fanout(
            writer, replicas, size_bits, job_id=job_id
        )

    # ------------------------------------------------------------------
    # Summary composition
    # ------------------------------------------------------------------

    def summaries(self) -> Dict[str, DomainSummary]:
        """Fresh per-domain digests, keyed by pod (sorted)."""
        return {pod: dom.summary() for pod, dom in self.domains.items()}

    def pair_headroom(
        self,
        summaries: Dict[str, DomainSummary],
        src_pod: str,
        dst_pod: str,
    ) -> float:
        """Aggregate core-fabric headroom from ``src_pod`` to ``dst_pod``.

        The min of the source pod's residual uplink capacity and the
        destination pod's residual downlink capacity — the two points an
        inter-pod flow can bottleneck on that per-pod state can see.
        Inbound pressure on the destination is the sum of every domain's
        outbound commitment toward it (pure composition, no link state).
        """
        src = summaries[src_pod]
        dst = summaries[dst_pod]
        inbound = sum(
            s.outbound_bps.get(dst_pod, 0.0) for s in summaries.values()
        )
        up = src.uplink_capacity_bps - src.total_outbound_bps
        down = dst.downlink_capacity_bps - inbound
        return max(0.0, min(up, down))

    def _summary_select(
        self,
        request_id: str,
        client: str,
        client_pod: str,
        replicas: Sequence[str],
        size_bits: float,
    ) -> SelectionResult:
        summaries = self.summaries()
        scored: List[Tuple[float, str]] = []
        for replica in replicas:
            pod = self._pod_of_host.get(replica)
            if pod is None:
                continue
            headroom = self.pair_headroom(summaries, pod, client_pod)
            pressure = 1 + self._pair_flows.get((pod, client_pod), 0)
            scored.append((headroom / pressure, replica))
        if not scored:
            raise ValueError(f"no known replica host in {replicas!r}")
        # Highest effective headroom wins; exact ties resolve to the
        # lexicographically smallest replica for determinism.
        scored.sort(key=lambda s: (-s[0], s[1]))

        for _, replica in scored:
            candidates = self._routing.paths(replica, client)
            healthy = [p for p in candidates if self._controller.path_is_up(p)]
            if healthy:
                path = min(
                    healthy,
                    key=lambda p: (
                        sum(self._link_load.get(lid, 0) for lid in p.link_ids),
                        p.link_ids,
                    ),
                )
                return self._place(request_id, replica, path, size_bits)
        # Every candidate's every path crosses an outage: same contract
        # as the monolith — return an ECMP pick over the full pool, let
        # the transfer abort and the client back off.
        return self._fallback_select(request_id, client, replicas, size_bits)

    def _place(
        self,
        request_id: str,
        replica: str,
        path: Path,
        size_bits: float,
    ) -> SelectionResult:
        src_pod = self._pod_of_host[path.src]
        dst_pod = self._pod_of_host[path.dst]
        domain = self.domains[src_pod]
        flow_id = f"gc-mf{next(self._flow_seq)}"
        est_bw = min(self._capacities[lid] for lid in path.link_ids)
        domain.state.add(
            TrackedFlow(
                flow_id=flow_id,
                path_link_ids=path.link_ids,
                size_bits=size_bits,
                remaining_bits=size_bits,
                bw_bps=est_bw,
                job_id=request_id,
            )
        )
        domain.state.set_bw(flow_id, est_bw, self._loop.now)
        domain.collector.start()
        self._placed[flow_id] = (src_pod, dst_pod, path.link_ids)
        key = (src_pod, dst_pod)
        self._pair_flows[key] = self._pair_flows.get(key, 0) + 1
        for lid in path.link_ids:
            self._link_load[lid] = self._link_load.get(lid, 0) + 1
        self.inter_pod_selections += 1
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.count("coordinator_inter_pod_total")
            tel.instant(
                self._loop.now,
                "coordinator.select",
                "decision",
                request=request_id,
                replica=replica,
                src_pod=src_pod,
                dst_pod=dst_pod,
                est_bw_bps=est_bw,
            )
        return SelectionResult(
            request_id=request_id,
            assignments=(
                Assignment(
                    flow_id=flow_id,
                    replica=replica,
                    path=path,
                    size_bits=size_bits,
                    est_bw_bps=est_bw,
                ),
            ),
        )

    # ------------------------------------------------------------------
    # Degraded mode (coordinator partitioned / total outage)
    # ------------------------------------------------------------------

    def _fallback_select(
        self,
        request_id: str,
        client: str,
        replicas: Sequence[str],
        size_bits: float,
    ) -> SelectionResult:
        """Salted-ECMP inter-pod spread, mirroring Flowserver demotion.

        Used while :attr:`partitioned` (summaries unreachable) and when
        no healthy path exists at all.  The flow is still registered
        with the source domain so monitoring and cleanup keep working.
        """
        pool = self._routing.paths_from_replicas(list(replicas), client)
        if not pool:
            raise ValueError(
                f"no network path from replicas {replicas!r} to {client!r}"
            )
        healthy = [p for p in pool if self._controller.path_is_up(p)]
        if healthy:
            pool = healthy
        self.degraded_selections += 1
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.count("coordinator_degraded_selections_total")
        seq = next(self._ecmp_seq)
        sources = sorted({p.src for p in pool})
        src = sources[seq % len(sources)]
        same_src = [p for p in pool if p.src == src]
        path = self._degraded_hasher.pick_for_flow(same_src, seq)
        src_pod = self._pod_of_host[path.src]
        domain = self.domains[src_pod]
        flow_id = f"gc-mf{next(self._flow_seq)}"
        est_bw = min(self._capacities[lid] for lid in path.link_ids)
        domain.state.add(
            TrackedFlow(
                flow_id=flow_id,
                path_link_ids=path.link_ids,
                size_bits=size_bits,
                remaining_bits=size_bits,
                bw_bps=est_bw,
                job_id=request_id,
            )
        )
        domain.state.set_bw(flow_id, est_bw, self._loop.now)
        domain.collector.start()
        self._placed[flow_id] = (
            src_pod,
            self._pod_of_host.get(path.dst, src_pod),
            path.link_ids,
        )
        return SelectionResult(
            request_id=request_id,
            assignments=(
                Assignment(
                    flow_id=flow_id,
                    replica=path.src,
                    path=path,
                    size_bits=size_bits,
                    est_bw_bps=est_bw,
                ),
            ),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _count(self, name: str) -> None:
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.count(name)

    def _on_flow_removed(self, message: FlowRemoved) -> None:
        placed = self._placed.pop(message.flow_id, None)
        if placed is None:
            return
        src_pod, dst_pod, link_ids = placed
        key = (src_pod, dst_pod)
        left = self._pair_flows.get(key, 0) - 1
        if left > 0:
            self._pair_flows[key] = left
        else:
            self._pair_flows.pop(key, None)
        for lid in link_ids:
            remaining = self._link_load.get(lid, 0) - 1
            if remaining > 0:
                self._link_load[lid] = remaining
            else:
                self._link_load.pop(lid, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GlobalCoordinator(domains={list(self.domains)}, "
            f"partitioned={self.partitioned})"
        )

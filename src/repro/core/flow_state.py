"""The Flowserver's model of in-flight flows.

The Flowserver never reads ground truth from the network simulator; it keeps
its own :class:`TrackedFlow` per Mayflower-related flow, refreshed from
switch counters and adjusted analytically when new flows are scheduled.

Pseudocode 2's freeze discipline lives here:

* ``SETBW`` (:meth:`FlowStateTable.set_bw`) — after a scheduling decision,
  a flow's estimated bandwidth is overwritten and the flow is *frozen*
  until its expected completion time, so the next (stale) stats poll cannot
  clobber the estimate;
* ``UPDATEBW`` (:meth:`FlowStateTable.update_bw_from_stats`) — a measured
  bandwidth only lands if the flow is unfrozen or its freeze has expired.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.sim import instrument


@dataclass
class TrackedFlow:
    """Flowserver-side state for one flow.

    Attributes
    ----------
    bw_bps:
        Current bandwidth-share estimate (measured or analytically set).
    remaining_bits:
        Outstanding volume, refreshed from flow stats on every poll (the
        freeze discipline applies only to bandwidth).
    freezed / freeze_until:
        Pseudocode 2 state: while ``freezed`` and ``now <= freeze_until``,
        measured bandwidths are ignored.
    """

    flow_id: str
    path_link_ids: Tuple[str, ...]
    size_bits: float
    remaining_bits: float
    bw_bps: float
    freezed: bool = False
    freeze_until: float = 0.0
    job_id: Optional[str] = None

    def expected_completion(self) -> float:
        """Seconds left at the current estimate (``inf`` at zero bandwidth)."""
        if self.bw_bps <= 0:
            return math.inf
        return self.remaining_bits / self.bw_bps


@dataclass
class FlowStateTable:
    """All tracked flows plus the link -> flows index the cost model needs.

    ``version`` increments on every mutation that can change a max-min
    estimate — membership (add/remove) and bandwidth writes (``SETBW``,
    ``UPDATEBW``, rollback).  :class:`repro.core.cost.LinkShareCache`
    keys its memoised allocations on it, so a cache can live across
    selection sweeps and self-invalidate the moment the table moves.
    """

    flows: Dict[str, TrackedFlow] = field(default_factory=dict)
    _link_index: Dict[str, Set[str]] = field(default_factory=dict)
    version: int = 0

    def add(self, flow: TrackedFlow) -> None:
        if flow.flow_id in self.flows:
            raise ValueError(f"flow {flow.flow_id!r} already tracked")
        self.flows[flow.flow_id] = flow
        for link_id in flow.path_link_ids:
            self._link_index.setdefault(link_id, set()).add(flow.flow_id)
        self.version += 1

    def remove(self, flow_id: str) -> Optional[TrackedFlow]:
        """Forget a flow (on FlowRemoved); returns it if it was tracked."""
        flow = self.flows.pop(flow_id, None)
        if flow is None:
            return None
        for link_id in flow.path_link_ids:
            members = self._link_index.get(link_id)
            if members is not None:
                members.discard(flow_id)
                if not members:
                    del self._link_index[link_id]
        self.version += 1
        return flow

    def get(self, flow_id: str) -> Optional[TrackedFlow]:
        return self.flows.get(flow_id)

    def flows_on_link(self, link_id: str) -> List[TrackedFlow]:
        """Tracked flows traversing ``link_id``, sorted for determinism."""
        ids = self._link_index.get(link_id, ())
        return [self.flows[fid] for fid in sorted(ids)]

    def flows_on_path(self, link_ids: Iterable[str]) -> List[TrackedFlow]:
        """Distinct tracked flows sharing at least one link with the path."""
        seen: Set[str] = set()
        for link_id in link_ids:
            seen.update(self._link_index.get(link_id, ()))
        return [self.flows[fid] for fid in sorted(seen)]

    def link_demands(self, link_id: str) -> List[float]:
        """Current bandwidth estimates of the flows on one link.

        These are the "demands" fed to the max-min estimate for existing
        flows (§4.2: "the demand for the existing flows is set to their
        current bandwidth share").
        """
        return [f.bw_bps for f in self.flows_on_link(link_id)]

    # ------------------------------------------------------------------
    # Pseudocode 2
    # ------------------------------------------------------------------

    def set_bw(self, flow_id: str, bw_bps: float, now: float) -> None:
        """``SETBW``: commit an analytic estimate and freeze the flow."""
        flow = self.flows[flow_id]
        flow.bw_bps = bw_bps
        self.version += 1
        flow.freeze_until = now + flow.expected_completion()
        flow.freezed = True
        tel = instrument.TELEMETRY
        if tel is not None and math.isfinite(flow.freeze_until):
            tel.instant(now, "flow.freeze", "freeze", flow=flow_id,
                        bw_bps=bw_bps, until=flow.freeze_until)

    def update_bw_from_stats(self, flow_id: str, bw_bps: float, now: float) -> bool:
        """``UPDATEBW``: apply a measured bandwidth unless frozen.

        Returns whether the measurement was applied.  An expired freeze is
        lifted by the update.
        """
        flow = self.flows.get(flow_id)
        if flow is None:
            return False
        if not flow.freezed or now > flow.freeze_until:
            was_frozen = flow.freezed
            flow.bw_bps = bw_bps
            self.version += 1
            flow.freezed = False
            if was_frozen:
                tel = instrument.TELEMETRY
                if tel is not None:
                    tel.instant(now, "flow.unfreeze", "freeze", flow=flow_id,
                                bw_bps=bw_bps)
            return True
        return False

    def update_remaining(self, flow_id: str, remaining_bits: float) -> None:
        """Refresh outstanding volume from flow stats (never frozen)."""
        flow = self.flows.get(flow_id)
        if flow is not None:
            flow.remaining_bits = max(0.0, remaining_bits)

    def snapshot_bw(self, flow_ids: Iterable[str]) -> Dict[str, Tuple[float, bool, float]]:
        """Capture (bw, freezed, freeze_until) for later rollback.

        Used by the multi-replica planner, which tentatively applies
        bandwidth updates and may abandon them (§4.3).
        """
        result = {}
        for fid in flow_ids:
            flow = self.flows[fid]
            result[fid] = (flow.bw_bps, flow.freezed, flow.freeze_until)
        return result

    def restore_bw(self, snapshot: Dict[str, Tuple[float, bool, float]]) -> None:
        """Undo tentative updates captured by :meth:`snapshot_bw`."""
        for fid, (bw, freezed, until) in snapshot.items():
            flow = self.flows.get(fid)
            if flow is not None:
                flow.bw_bps = bw
                flow.freezed = freezed
                flow.freeze_until = until
        self.version += 1

    def __len__(self) -> int:
        return len(self.flows)

    def __contains__(self, flow_id: str) -> bool:
        return flow_id in self.flows

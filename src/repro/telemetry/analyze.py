"""Trace-query engine: operation trees, critical paths, stage profiles.

Context propagation (``trace``/``parent`` args on async-span begin
events) turns a recorded JSONL trace into a forest of per-operation
trees — one tree per client-visible operation, spanning client →
nameserver → flowserver → dataservers.  This module rebuilds that
forest and answers the question the flat trace could not: *where did
this append's latency go?*

* :func:`build_trees` — pair begin/end events into :class:`Span` nodes
  and link parent/child edges (reporting dangling parent references);
* :func:`critical_path` — the chain of spans that actually gated an
  operation's completion.  The segments partition the root's interval
  exactly: walking backward from the root's end, the child whose end is
  latest (but not after the cursor) owns the trailing slice, the gap
  between that child's end and the cursor is the parent's own time, and
  recursion repeats inside the child.  Stage durations therefore sum to
  the client-observed latency by construction;
* :func:`stage_profile` — per-stage duration statistics and ASCII
  histograms over every span of a name;
* :func:`render_report` — the ``python -m repro.telemetry analyze``
  output: forest summary, stage profile, top-K slowest operations with
  their critical paths.

Everything is a pure function of the recorded events, so a seeded run
analyzes to byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.telemetry.tracer import TraceEvent


class AnalyzeError(RuntimeError):
    """A query asked of a trace that cannot answer it."""


@dataclass
class Span:
    """One async span reconstructed from its begin/end events."""

    span_id: str
    name: str
    cat: str
    track: str
    start: float
    end: Optional[float] = None
    trace_id: Optional[str] = None
    parent_id: Optional[str] = None
    args: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def closed_descendants(self) -> int:
        total = 0
        for child in self.children:
            total += (1 if child.end is not None else 0)
            total += child.closed_descendants()
        return total

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True)
class PathSegment:
    """One slice of a critical path (a span's own time or a child's)."""

    name: str
    span_id: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def build_spans(events: Sequence[TraceEvent]) -> List[Span]:
    """Pair ``b``/``e`` events by ``(cat, id)`` into spans, record order."""
    spans: List[Span] = []
    open_spans: Dict[Tuple[str, Optional[str]], Span] = {}
    for event in events:
        if event.ph == "b":
            args = dict(event.args) if event.args else {}
            span = Span(
                span_id=str(event.id),
                name=event.name,
                cat=event.cat,
                track=event.track,
                start=event.ts,
                trace_id=(str(args["trace"]) if "trace" in args else None),
                parent_id=(str(args["parent"]) if "parent" in args else None),
                args=args,
            )
            spans.append(span)
            open_spans[(event.cat, event.id)] = span
        elif event.ph == "e":
            span = open_spans.pop((event.cat, event.id), None)
            if span is not None:
                span.end = event.ts
                if event.args:
                    span.args.update(event.args)
    return spans


def build_trees(
    events: Sequence[TraceEvent],
) -> Tuple[List[Span], List[str]]:
    """Link spans into per-operation trees; returns (roots, problems).

    A span whose ``parent`` id names no recorded span is a *dangling*
    reference: it is reported as a problem and treated as a root so its
    subtree still shows up in reports.
    """
    spans = build_spans(events)
    by_id: Dict[str, Span] = {span.span_id: span for span in spans}
    roots: List[Span] = []
    problems: List[str] = []
    for span in spans:
        if span.parent_id is None:
            roots.append(span)
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"span {span.span_id!r} ({span.name}) references unknown "
                f"parent {span.parent_id!r}"
            )
            roots.append(span)
        else:
            parent.children.append(span)
    return roots, problems


def operations(
    roots: Sequence[Span], name_prefix: Optional[str] = None
) -> List[Span]:
    """Root spans of client-visible operations, by start time.

    ``name_prefix`` filters (e.g. ``"client.append"``); by default every
    root that carries a trace id and closed counts as an operation.
    """
    selected = [
        root
        for root in roots
        if root.end is not None and root.trace_id is not None
    ]
    if name_prefix is not None:
        selected = [r for r in selected if r.name.startswith(name_prefix)]
    selected.sort(key=lambda r: (r.start, r.span_id))
    return selected


def critical_path(root: Span) -> List[PathSegment]:
    """The gating chain of one operation, as an exact partition.

    Walks backward from the root's end: at each cursor the child with
    the latest end at or before it owns the preceding slice (recursing
    into that child), and any gap back to the cursor is the parent's
    own time.  The returned segments tile ``[root.start, root.end]``
    with no gaps or overlaps, so their durations sum to the operation's
    client-observed latency.
    """
    if root.end is None:
        raise AnalyzeError(
            f"span {root.span_id!r} ({root.name}) is still open; no "
            f"critical path"
        )
    segments: List[PathSegment] = []  # built back-to-front, reversed at end

    def walk(span: Span, lo: float, hi: float) -> None:
        cursor = hi
        eligible = sorted(
            (
                child
                for child in span.children
                if child.end is not None
                and child.end <= cursor
                and child.start >= lo
            ),
            key=lambda child: (child.end, child.start, child.span_id),
        )
        while eligible and cursor > lo:
            child = eligible.pop()
            assert child.end is not None
            if child.end > cursor:
                continue
            if child.end < cursor:
                segments.append(
                    PathSegment(
                        name=f"{span.name} (self)",
                        span_id=span.span_id,
                        start=child.end,
                        end=cursor,
                    )
                )
            walk(child, child.start, child.end)
            cursor = child.start
            eligible = [
                c for c in eligible if c.end is not None and c.end <= cursor
            ]
        if cursor > lo:
            label = f"{span.name} (self)" if span.children else span.name
            segments.append(
                PathSegment(
                    name=label, span_id=span.span_id, start=lo, end=cursor
                )
            )

    walk(root, root.start, root.end)
    segments.reverse()
    return segments


# ----------------------------------------------------------------------
# Stage statistics and rendering
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StageStats:
    """Closed-span duration statistics for one span name."""

    name: str
    count: int
    total: float
    mean: float
    p50: float
    p95: float
    max: float
    durations: Tuple[float, ...]


def _percentile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


def stage_profile(roots: Sequence[Span]) -> List[StageStats]:
    """Per-span-name duration statistics over every tree, worst first."""
    durations: Dict[str, List[float]] = {}

    def collect(span: Span) -> None:
        if span.end is not None:
            durations.setdefault(span.name, []).append(span.end - span.start)
        for child in span.children:
            collect(child)

    for root in roots:
        collect(root)
    stats: List[StageStats] = []
    for name in sorted(durations):
        values = sorted(durations[name])
        stats.append(
            StageStats(
                name=name,
                count=len(values),
                total=sum(values),
                mean=sum(values) / len(values),
                p50=_percentile(values, 0.50),
                p95=_percentile(values, 0.95),
                max=values[-1],
                durations=tuple(values),
            )
        )
    stats.sort(key=lambda s: (-s.total, s.name))
    return stats


def render_histogram(
    durations: Sequence[float], buckets: int = 8, width: int = 32
) -> List[str]:
    """Linear-bucket ASCII histogram lines for one stage's durations."""
    if not durations:
        return []
    low, high = min(durations), max(durations)
    if high <= low:
        return [f"    [{low:.6f}s] {'#' * min(width, len(durations))} "
                f"({len(durations)})"]
    step = (high - low) / buckets
    counts = [0] * buckets
    for value in durations:
        index = min(buckets - 1, int((value - low) / step))
        counts[index] += 1
    peak = max(counts)
    lines = []
    for index, count in enumerate(counts):
        lo = low + index * step
        hi = lo + step
        bar = "#" * (max(1, round(count / peak * width)) if count else 0)
        lines.append(f"    [{lo:.6f}s, {hi:.6f}s) {bar:<{width}} ({count})")
    return lines


def render_critical_path(root: Span, segments: Sequence[PathSegment]) -> List[str]:
    """Human-readable critical-path table for one operation."""
    assert root.end is not None
    total = root.end - root.start
    lines = []
    for segment in segments:
        share = (segment.duration / total * 100.0) if total > 0 else 0.0
        lines.append(
            f"    {segment.duration:>12.6f}s  {share:>5.1f}%  {segment.name}"
            f"  [{segment.span_id}]"
        )
    path_sum = sum(segment.duration for segment in segments)
    lines.append(
        f"    {path_sum:>12.6f}s  100.0%  = stages sum "
        f"(client-observed latency {total:.6f}s)"
    )
    return lines


def render_report(
    events: Sequence[TraceEvent],
    op: Optional[str] = None,
    top: int = 5,
    histograms: bool = True,
) -> str:
    """The full ``analyze`` report (deterministic text)."""
    roots, problems = build_trees(events)
    ops = operations(roots, name_prefix=op)
    lines: List[str] = []
    span_count = len(build_spans(events))
    lines.append(
        f"operation trees: {len(ops)}"
        + (f" (filter: {op!r})" if op else "")
        + f"; spans: {span_count}; roots: {len(roots)}"
    )
    for problem in problems:
        lines.append(f"  warning: {problem}")
    if not ops:
        lines.append("no closed operation trees found")
        return "\n".join(lines)

    lines.append("")
    lines.append("stage profile (closed spans across all operation trees):")
    lines.append(
        f"  {'stage':<36} {'count':>6} {'mean':>12} {'p95':>12} {'max':>12}"
    )
    profile = stage_profile(ops)
    for stats in profile:
        lines.append(
            f"  {stats.name:<36} {stats.count:>6} {stats.mean:>12.6f} "
            f"{stats.p95:>12.6f} {stats.max:>12.6f}"
        )
    if histograms:
        lines.append("")
        lines.append("per-stage latency histograms:")
        for stats in profile:
            lines.append(f"  {stats.name} ({stats.count} span(s)):")
            lines.extend(render_histogram(stats.durations))

    ranked = sorted(
        ops,
        key=lambda r: (-(r.end - r.start) if r.end is not None else 0.0,
                       r.start, r.span_id),
    )[:top]
    lines.append("")
    lines.append(f"top {len(ranked)} slowest operation(s):")
    for root in ranked:
        assert root.end is not None
        descriptor = ", ".join(
            f"{key}={root.args[key]}"
            for key in sorted(root.args)
            if key not in ("trace", "parent") and not isinstance(
                root.args[key], (dict, list))
        )
        lines.append(
            f"  {root.name} [{root.trace_id}] "
            f"{root.end - root.start:.6f}s ({descriptor})"
        )
        lines.extend(render_critical_path(root, critical_path(root)))
    return "\n".join(lines)

"""Trace and metrics exporters: JSONL, Chrome trace-event JSON, Prometheus.

All three renderings are pure functions of the recorded events/metrics —
no wall-clock reads, no environment probes — so a seeded run exports
byte-identical artifacts every time (the repo's determinism contract
extends to its observability layer).

* **JSONL** — one compact JSON object per line, keys sorted; the
  canonical on-disk form and the input to ``python -m repro.telemetry``.
* **Chrome trace JSON** — the Trace Event Format consumed by Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``; sync spans map to
  ``B``/``E``, cross-event spans to async ``b``/``e`` (correlated by
  ``cat`` + ``id``), probes to ``C`` counter series.  Timestamps convert
  from simulated seconds to integer-friendly microseconds.
* **Prometheus** — text exposition of the metrics registry, for diffing
  runs or scraping a long-lived experiment driver.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import TraceEvent, Tracer

#: pid used for every Chrome event (the sim is one logical process).
TRACE_PID = 1


def _events_of(source: Union[Tracer, Sequence[TraceEvent]]) -> Sequence[TraceEvent]:
    if isinstance(source, Tracer):
        return source.events
    return source


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------


def to_jsonl(source: Union[Tracer, Sequence[TraceEvent]]) -> str:
    """Render events as JSON Lines (sorted keys, compact separators)."""
    lines = [
        json.dumps(event.to_json_dict(), sort_keys=True, separators=(",", ":"))
        for event in _events_of(source)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(source: Union[Tracer, Sequence[TraceEvent]],
                path: Union[str, Path]) -> Path:
    out = Path(path)
    out.write_text(to_jsonl(source), encoding="utf-8")
    return out


def read_jsonl(path: Union[str, Path]) -> List[TraceEvent]:
    """Parse a JSONL trace back into :class:`TraceEvent` records."""
    events: List[TraceEvent] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        events.append(
            TraceEvent(
                ts=float(raw["ts"]),
                ph=str(raw["ph"]),
                cat=str(raw["cat"]),
                name=str(raw["name"]),
                track=str(raw.get("track", "sim")),
                id=raw.get("id"),
                args=raw.get("args"),
            )
        )
    return events


# ----------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto)
# ----------------------------------------------------------------------


def to_chrome_trace(
    source: Union[Tracer, Sequence[TraceEvent]],
    process_name: str = "mayflower-sim",
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """The Trace Event Format "JSON object" flavour.

    Tracks map to synthetic thread ids in first-seen order (with
    ``thread_name`` metadata so Perfetto labels them); the optional
    metrics registry snapshot rides along in ``otherData``.
    """
    events = _events_of(source)
    tids: Dict[str, int] = {}
    #: span id -> its begin event (for flow-arrow synthesis below).
    begin_by_id: Dict[str, TraceEvent] = {}
    trace_events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]

    def tid_for(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = len(tids) + 1
            tids[track] = tid
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid

    for event in events:
        out: Dict[str, object] = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": event.ts * 1e6,  # sim seconds -> trace microseconds
            "pid": TRACE_PID,
            "tid": tid_for(event.track),
        }
        if event.ph == "i":
            out["s"] = "t"  # instant scope: thread
        if event.ph in ("b", "e"):
            out["id"] = event.id if event.id is not None else "0"
            if event.ph == "b" and event.id is not None:
                begin_by_id[str(event.id)] = event
        if event.args:
            out["args"] = dict(event.args)
        trace_events.append(out)

    # Parent/child span links (the `parent` arg context propagation adds)
    # become Chrome flow arrows: a flow start (`s`) at the parent's begin
    # and a flow finish (`f`, binding point "e"nclosing-slice begin) at
    # the child's begin, correlated by a per-edge flow id.  Perfetto then
    # draws each operation tree as connected arrows across tracks.
    for event in events:
        if event.ph != "b" or not event.args or event.id is None:
            continue
        parent_id = event.args.get("parent")
        if parent_id is None:
            continue
        parent = begin_by_id.get(str(parent_id))
        if parent is None:
            continue  # dangling reference; the validator reports these
        flow_id = f"flow:{event.id}"
        trace_events.append(
            {
                "name": "causal",
                "cat": "flow",
                "ph": "s",
                "id": flow_id,
                "ts": parent.ts * 1e6,
                "pid": TRACE_PID,
                "tid": tid_for(parent.track),
            }
        )
        trace_events.append(
            {
                "name": "causal",
                "cat": "flow",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "ts": event.ts * 1e6,
                "pid": TRACE_PID,
                "tid": tid_for(event.track),
            }
        )

    other: Dict[str, object] = {"clock": "simulated-seconds-x1e6"}
    if registry is not None:
        other["metrics"] = registry.snapshot()
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    source: Union[Tracer, Sequence[TraceEvent]],
    path: Union[str, Path],
    process_name: str = "mayflower-sim",
    registry: Optional[MetricsRegistry] = None,
) -> Path:
    out = Path(path)
    payload = to_chrome_trace(source, process_name=process_name, registry=registry)
    out.write_text(
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return out


#: Valid phases in an exported Chrome trace (M = metadata we add;
#: s/t/f = flow start/step/finish arrows for parent/child span links).
CHROME_PHASES = frozenset({"i", "B", "E", "b", "e", "C", "M", "s", "t", "f"})


def validate_chrome_trace(payload: Dict[str, object]) -> List[str]:
    """Schema check for the Trace Event Format (used by tests and CI).

    Returns a list of problems; empty means the trace is loadable by
    Perfetto / ``chrome://tracing``.
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    open_sync: Dict[int, List[str]] = {}
    #: async begin-event ids (targets of `args.parent` references).
    begin_ids = {
        str(item["id"])
        for item in events
        if isinstance(item, dict) and item.get("ph") == "b" and "id" in item
    }
    #: flow id -> count of start (s) / finish (f) events, for pairing.
    flow_starts: Dict[str, int] = {}
    flow_finishes: Dict[str, int] = {}
    for index, item in enumerate(events):
        if not isinstance(item, dict):
            problems.append(f"event {index}: not an object")
            continue
        where = f"event {index} ({item.get('name')!r})"
        for key in ("name", "ph", "pid", "tid"):
            if key not in item:
                problems.append(f"{where}: missing {key!r}")
        ph = item.get("ph")
        if ph not in CHROME_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if ph != "M":
            ts = item.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where}: ts missing or not numeric")
            if "cat" not in item:
                problems.append(f"{where}: missing 'cat'")
        if ph in ("b", "e") and "id" not in item:
            problems.append(f"{where}: async event without 'id'")
        if ph == "b":
            span_args = item.get("args")
            if isinstance(span_args, dict) and "parent" in span_args:
                parent_ref = str(span_args["parent"])
                if parent_ref not in begin_ids:
                    problems.append(
                        f"{where}: dangling parent reference {parent_ref!r}"
                    )
        if ph in ("s", "t", "f"):
            flow_id = item.get("id")
            if flow_id is None:
                problems.append(f"{where}: flow event without 'id'")
            else:
                key = str(flow_id)
                if ph == "s":
                    flow_starts[key] = flow_starts.get(key, 0) + 1
                elif ph == "f":
                    flow_finishes[key] = flow_finishes.get(key, 0) + 1
            if ph == "f" and item.get("bp") not in (None, "e"):
                problems.append(
                    f"{where}: flow finish with bad binding point "
                    f"{item.get('bp')!r}"
                )
        if ph == "i" and item.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant without a valid scope 's'")
        if ph == "C" and not isinstance(item.get("args"), dict):
            problems.append(f"{where}: counter without args dict")
        tid = item.get("tid")
        if isinstance(tid, int) and ph in ("B", "E"):
            stack = open_sync.setdefault(tid, [])
            name = str(item.get("name"))
            if ph == "B":
                stack.append(name)
            elif not stack or stack[-1] != name:
                problems.append(f"{where}: unbalanced E on tid {tid}")
            else:
                stack.pop()
    for tid, stack in open_sync.items():
        if stack:
            problems.append(f"tid {tid}: {len(stack)} sync span(s) left open")
    for flow_id in sorted(set(flow_starts) | set(flow_finishes)):
        starts = flow_starts.get(flow_id, 0)
        finishes = flow_finishes.get(flow_id, 0)
        if starts != finishes:
            problems.append(
                f"flow {flow_id!r}: {starts} start(s) but {finishes} finish(es)"
            )
    return problems


# ----------------------------------------------------------------------
# Prometheus
# ----------------------------------------------------------------------


def render_prometheus(registry: MetricsRegistry) -> str:
    """Text exposition format of every metric in the registry."""
    return registry.render_prometheus()


def write_prometheus(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    out = Path(path)
    out.write_text(render_prometheus(registry), encoding="utf-8")
    return out

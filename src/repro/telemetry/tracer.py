"""Deterministic spans and events on the simulated clock.

Every timestamp a :class:`Tracer` records comes from the caller (who reads
it off an :class:`~repro.sim.engine.EventLoop`), never from the host
clock, so two runs with the same seed produce byte-identical traces.

Three event shapes cover the whole taxonomy:

* **instants** (``ph="i"``) — a point in simulated time (a selection
  decision, a fault firing, a poll cycle, a freeze transition);
* **sync spans** (``ph="B"``/``"E"``) — a lexically scoped region that
  runs inside one engine event and never yields (``with tracer.span(...)``;
  nesting is enforced per track);
* **async spans** (``ph="b"``/``"e"``) — a region that crosses engine
  events (a flow transfer, an RPC round trip, a client read), correlated
  by ``(cat, id)`` exactly as Chrome trace events are.

Counter samples (``ph="C"``) carry a dict of named series for the
time-series panes in Perfetto.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Protocol, Tuple

from repro.sim import instrument
from repro.sim.instrument import TraceContext

#: The Chrome trace-event phases this tracer emits.
PHASES = ("i", "B", "E", "b", "e", "C")


class Clock(Protocol):
    """Anything with a ``now`` in simulated seconds (an ``EventLoop``)."""

    @property
    def now(self) -> float: ...


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event (immutable, JSON-ready)."""

    ts: float
    ph: str
    cat: str
    name: str
    track: str
    id: Optional[str] = None
    args: Optional[Mapping[str, object]] = None

    def to_json_dict(self) -> Dict[str, object]:
        """A plain dict with deterministic content (for the exporters)."""
        out: Dict[str, object] = {
            "ts": self.ts,
            "ph": self.ph,
            "cat": self.cat,
            "name": self.name,
            "track": self.track,
        }
        if self.id is not None:
            out["id"] = self.id
        if self.args:
            out["args"] = dict(self.args)
        return out


class TraceError(RuntimeError):
    """Misuse of the tracer (unbalanced sync spans, bad phase)."""


@dataclass
class _OpenSpan:
    name: str
    cat: str
    track: str


class Tracer:
    """An append-only, in-memory event buffer on the sim clock.

    The tracer itself draws no randomness and reads no clock: callers
    supply every timestamp, so recording is exactly as deterministic as
    the simulation that drives it.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        #: Per-track stack of open sync spans (nesting enforcement).
        self._open: Dict[str, List[_OpenSpan]] = {}
        self._id_seqs: Dict[str, "itertools.count[int]"] = {}
        #: Event observers (the flight recorder); called per recorded
        #: event, after it is appended.  Tuple so fan-out never sees a
        #: half-updated list.
        self._observers: Tuple[Callable[[TraceEvent], None], ...] = ()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _record(self, event: TraceEvent) -> None:
        self.events.append(event)
        if self._observers:
            for observer in self._observers:
                observer(event)

    def instant(
        self, ts: float, name: str, cat: str, track: str = "sim", **args: object
    ) -> None:
        """Record a point event."""
        self._record(
            TraceEvent(ts=ts, ph="i", cat=cat, name=name, track=track,
                       args=args or None)
        )

    def counter(
        self, ts: float, name: str, values: Mapping[str, float], track: str = "metrics"
    ) -> None:
        """Record a counter sample (one dict of named series)."""
        self._record(
            TraceEvent(ts=ts, ph="C", cat="metric", name=name, track=track,
                       args=dict(values))
        )

    def begin(
        self,
        ts: float,
        name: str,
        cat: str,
        span_id: str,
        track: str = "sim",
        **args: object,
    ) -> None:
        """Open an async span; pair with :meth:`end` via ``(cat, span_id)``."""
        self._record(
            TraceEvent(ts=ts, ph="b", cat=cat, name=name, track=track,
                       id=span_id, args=args or None)
        )

    def end(
        self,
        ts: float,
        name: str,
        cat: str,
        span_id: str,
        track: str = "sim",
        **args: object,
    ) -> None:
        """Close the async span opened with the same ``(cat, span_id)``."""
        self._record(
            TraceEvent(ts=ts, ph="e", cat=cat, name=name, track=track,
                       id=span_id, args=args or None)
        )

    # ------------------------------------------------------------------
    # Causally-linked spans (trace / parent threading)
    # ------------------------------------------------------------------

    def start_span(
        self,
        ts: float,
        name: str,
        cat: str,
        track: str = "sim",
        span_id: Optional[str] = None,
        **args: object,
    ) -> TraceContext:
        """Open an async span parented under the ambient trace context.

        The begin event's ``args`` carry the span's ``trace`` (root
        operation id) and, for non-roots, its ``parent`` span id — the
        edges :mod:`repro.telemetry.analyze` rebuilds operation trees
        from.  Returns the child :class:`TraceContext`; the caller
        decides whether to install it ambiently (via
        :func:`repro.sim.instrument.set_context`) for the span's dynamic
        extent.
        """
        if span_id is None:
            span_id = self.next_id("span")
        ctx = instrument.derive_context(span_id)
        linked: Dict[str, object] = {"trace": ctx.trace_id}
        if ctx.parent_id is not None:
            linked["parent"] = ctx.parent_id
        linked.update(args)
        self.begin(ts, name, cat, span_id, track, **linked)
        return ctx

    def finish_span(
        self,
        ts: float,
        ctx: TraceContext,
        name: str,
        cat: str,
        track: str = "sim",
        **args: object,
    ) -> None:
        """Close the span :meth:`start_span` opened for ``ctx``."""
        self.end(ts, name, cat, ctx.span_id, track, **args)

    @contextmanager
    def span(
        self, clock: Clock, name: str, cat: str, track: str = "sim", **args: object
    ) -> Iterator[None]:
        """A lexically scoped sync span (must not yield to the engine).

        Nesting is enforced per track: spans close strictly LIFO, so the
        B/E pairs always form a well-formed tree in the exported trace.
        """
        self._record(
            TraceEvent(ts=clock.now, ph="B", cat=cat, name=name, track=track,
                       args=args or None)
        )
        stack = self._open.setdefault(track, [])
        stack.append(_OpenSpan(name=name, cat=cat, track=track))
        try:
            yield
        finally:
            if not stack or stack[-1].name != name:
                raise TraceError(
                    f"sync span {name!r} on track {track!r} closed out of order"
                )
            stack.pop()
            self._record(
                TraceEvent(ts=clock.now, ph="E", cat=cat, name=name, track=track)
            )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def next_id(self, prefix: str) -> str:
        """A deterministic fresh span id (``prefix`` + counter)."""
        seq = self._id_seqs.get(prefix)
        if seq is None:
            seq = itertools.count()
            self._id_seqs[prefix] = seq
        return f"{prefix}{next(seq)}"

    def add_observer(self, observer: Callable[[TraceEvent], None]) -> None:
        """Register a per-event observer (e.g. a flight recorder)."""
        self._observers = self._observers + (observer,)

    def remove_observer(self, observer: Callable[[TraceEvent], None]) -> None:
        """Remove a registered observer (idempotent).

        Compares by equality, not identity, so a bound method (a fresh
        object per attribute access, e.g. ``recorder.record``) unregisters
        correctly.
        """
        self._observers = tuple(o for o in self._observers if o != observer)

    def open_sync_spans(self) -> int:
        """Number of sync spans currently open (0 in a settled trace)."""
        return sum(len(stack) for stack in self._open.values())

    def clear(self) -> None:
        """Drop every recorded event (id counters keep counting)."""
        self.events.clear()
        self._open.clear()

    def __len__(self) -> int:
        return len(self.events)


def pair_async_spans(
    events: List[TraceEvent],
) -> List[Tuple[TraceEvent, TraceEvent]]:
    """Match ``b``/``e`` events by ``(cat, id)`` in record order.

    Unmatched begins (still-open spans at export time) are dropped;
    used by the CLI's duration statistics.
    """
    open_spans: Dict[Tuple[str, Optional[str]], TraceEvent] = {}
    pairs: List[Tuple[TraceEvent, TraceEvent]] = []
    for event in events:
        key = (event.cat, event.id)
        if event.ph == "b":
            open_spans[key] = event
        elif event.ph == "e":
            begin = open_spans.pop(key, None)
            if begin is not None:
                pairs.append((begin, event))
    return pairs

"""Deterministic observability for the Mayflower simulation.

Everything here runs on the simulated clock: spans and events record the
timestamps callers read off the event loop, the metrics registry mutates
only when simulation code does, and the exporters are pure functions of
what was recorded.  Same seed, same trace — byte for byte.

Quick tour::

    import repro.telemetry as telemetry

    with telemetry.session() as tel:
        run_experiment(...)               # emit sites find the session
        telemetry.write_jsonl(tel.tracer, "trace.jsonl")
        telemetry.write_chrome_trace(tel.tracer, "trace.json",
                                     registry=tel.metrics)

then ``python -m repro.telemetry summarize trace.jsonl`` or load
``trace.json`` in https://ui.perfetto.dev.  See DESIGN.md §Telemetry.
"""

from repro.sim.instrument import TraceContext
from repro.telemetry.analyze import (
    PathSegment,
    Span,
    StageStats,
    build_trees,
    critical_path,
    operations,
    render_report,
    stage_profile,
)
from repro.telemetry.bind import bind_resilience_metrics, bind_standard_probes
from repro.telemetry.flight import (
    FlightDump,
    FlightRecorder,
    read_flight_dump,
    write_flight_dump,
)
from repro.telemetry.exporters import (
    read_jsonl,
    render_prometheus,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    TimeSeriesSampler,
)
from repro.telemetry.session import (
    Telemetry,
    active,
    install,
    session,
    uninstall,
)
from repro.telemetry.tracer import (
    TraceError,
    TraceEvent,
    Tracer,
    pair_async_spans,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "FlightDump",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "PathSegment",
    "Span",
    "StageStats",
    "Telemetry",
    "TimeSeriesSampler",
    "TraceContext",
    "TraceError",
    "TraceEvent",
    "Tracer",
    "active",
    "bind_resilience_metrics",
    "bind_standard_probes",
    "build_trees",
    "critical_path",
    "install",
    "operations",
    "pair_async_spans",
    "read_flight_dump",
    "read_jsonl",
    "render_prometheus",
    "render_report",
    "session",
    "stage_profile",
    "to_chrome_trace",
    "to_jsonl",
    "uninstall",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_flight_dump",
    "write_jsonl",
    "write_prometheus",
]

"""Wire live simulation components into samplers and registries.

Two jobs live here, both read-only with respect to the simulation:

* :func:`bind_standard_probes` registers the periodic time-series probes
  the paper's figures care about (link utilization, tracked/frozen flow
  counts, in-flight transfer count) on a
  :class:`~repro.telemetry.metrics.TimeSeriesSampler`;
* :func:`bind_resilience_metrics` exposes the cross-stack resilience
  counters as callback gauges, so
  :func:`repro.experiments.metrics.resilience_summary` (and any
  Prometheus dump) reads one registry instead of spelunking through five
  component objects.

Everything is callback-based: no values are copied at bind time, reads
happen when a sample fires or a summary is taken.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, List, Optional

from repro.net.topology import Topology
from repro.net.view import NetworkView
from repro.telemetry.metrics import MetricsRegistry, TimeSeriesSampler

#: Gauge value standing in for "not applicable yet" (no recoveries seen).
NOT_AVAILABLE = math.nan


def _frozen_flow_count(flowserver: Any) -> float:
    table = flowserver.state
    return float(sum(1 for f in table.flows.values() if f.freezed))


def bind_standard_probes(
    sampler: TimeSeriesSampler,
    *,
    network: Optional[NetworkView] = None,
    topology: Optional[Topology] = None,
    flowserver: Optional[Any] = None,
) -> List[str]:
    """Attach the standard probe set; returns the probe names added.

    ``network``/``topology`` enable the link-utilization probes (mean and
    max fraction of capacity across up links); ``flowserver`` enables the
    tracked/frozen flow-count probes.  Missing components simply skip
    their probes, so call sites pass whatever the scheme under test has.

    ``network`` is typed as the read-only
    :class:`~repro.net.view.NetworkView`; when the concrete network also
    carries an incremental rate engine (:class:`FlowNetwork` does), its
    solver counters are exposed too, as is the Flowserver's cost-model
    cache hit rate.
    """
    added: List[str] = []

    if network is not None and topology is not None:
        link_ids = sorted(topology.links)

        def _utilizations() -> List[float]:
            network.snapshot_progress()
            out = []
            for link_id in link_ids:
                link = topology.links[link_id]
                if not link.up or link.capacity_bps <= 0:
                    continue
                out.append(network.link_utilization_bps(link_id) / link.capacity_bps)
            return out

        def _mean_util() -> float:
            values = _utilizations()
            return sum(values) / len(values) if values else 0.0

        def _max_util() -> float:
            values = _utilizations()
            return max(values) if values else 0.0

        sampler.add_probe("link_utilization_mean", _mean_util)
        sampler.add_probe("link_utilization_max", _max_util)
        added += ["link_utilization_mean", "link_utilization_max"]

    engine = getattr(network, "rate_engine", None)
    if engine is not None:
        stats = engine.stats
        sampler.add_probe("rate_engine_solves", lambda: float(stats.solves))
        sampler.add_probe(
            "rate_engine_last_dirty_flows", lambda: float(stats.last_dirty_flows)
        )
        sampler.add_probe(
            "rate_engine_visit_savings", lambda: float(stats.visit_savings)
        )
        added += [
            "rate_engine_solves",
            "rate_engine_last_dirty_flows",
            "rate_engine_visit_savings",
        ]

    if flowserver is not None:
        sampler.add_probe(
            "tracked_flows", lambda: float(flowserver.tracked_flow_count())
        )
        sampler.add_probe("frozen_flows", lambda: _frozen_flow_count(flowserver))
        added += ["tracked_flows", "frozen_flows"]
        cache = getattr(flowserver, "link_cache", None)
        if cache is not None:
            sampler.add_probe(
                "cost_cache_hit_rate", lambda: float(cache.hit_rate)
            )
            added += ["cost_cache_hit_rate"]

    return added


def _sum_over(objects: List[Any], attribute: str) -> Callable[[], float]:
    def probe() -> float:
        return float(sum(getattr(obj, attribute) for obj in objects))

    return probe


def bind_resilience_metrics(
    registry: MetricsRegistry,
    cluster: Any,
    clients: Iterable[Any],
    injector: Optional[Any] = None,
) -> MetricsRegistry:
    """Expose the resilience counters as callback gauges on ``registry``.

    Gauge names mirror the :class:`ResilienceSummary` fields.  Components
    a scheme lacks (no flowserver, no injector) register constant-zero
    gauges so every dump has the full schema.  ``time_to_recover_seconds``
    reads ``NaN`` when the scheme has no Flowserver at all.
    """
    client_list = list(clients)
    flowserver = cluster.flowserver
    collector = flowserver.collector if flowserver is not None else None

    def live(obj: Optional[Any], attribute: str) -> Callable[[], float]:
        if obj is None:
            return lambda: 0.0
        return lambda: float(getattr(obj, attribute))

    registry.gauge(
        "faults_applied", "Fault-plan events applied by the injector",
        callback=live(injector, "events_applied"),
    )
    registry.gauge(
        "flows_aborted", "Transfers aborted for any reason",
        callback=live(cluster.controller, "flows_aborted"),
    )
    registry.gauge(
        "flows_aborted_by_faults", "Transfers aborted by injected faults",
        callback=live(injector, "flows_aborted_by_faults"),
    )
    registry.gauge(
        "degraded_selections", "Replica selections made in degraded mode",
        callback=live(flowserver, "degraded_selections"),
    )
    registry.gauge(
        "degraded_entries", "Times the Flowserver entered degraded mode",
        callback=live(flowserver, "degraded_entries"),
    )
    registry.gauge(
        "unreachable_path_selections",
        "Selections where every candidate path was down",
        callback=live(flowserver, "unreachable_path_selections"),
    )

    def _ttr() -> float:
        if flowserver is None:
            return NOT_AVAILABLE
        return float(flowserver.time_to_recover())

    registry.gauge(
        "time_to_recover_seconds",
        "Mean degraded-to-recovered latency (NaN before first recovery)",
        callback=_ttr,
    )
    registry.gauge(
        "polls_lost", "Stats polls lost to faults",
        callback=live(collector, "polls_lost"),
    )
    registry.gauge(
        "poll_errors", "Stats polls that returned errors",
        callback=live(collector, "poll_errors"),
    )
    registry.gauge(
        "rpc_calls_timed_out", "RPC calls that expired undelivered",
        callback=live(cluster.fabric, "calls_timed_out"),
    )
    registry.gauge(
        "read_retries", "Client read attempts retried",
        callback=_sum_over(client_list, "read_retries"),
    )
    registry.gauge(
        "read_failovers", "Client reads failed over to another replica",
        callback=_sum_over(client_list, "read_failovers"),
    )
    registry.gauge(
        "read_resumptions", "Client reads resumed mid-object",
        callback=_sum_over(client_list, "read_resumptions"),
    )
    registry.gauge(
        "bytes_resumed", "Bytes skipped thanks to resumed reads",
        callback=_sum_over(client_list, "bytes_resumed"),
    )
    return registry

"""``python -m repro.telemetry`` — inspect and convert recorded traces.

Subcommands::

    summarize TRACE.jsonl             # event counts, categories, sim-time range
    convert   TRACE.jsonl -o OUT.json # Chrome trace JSON for Perfetto
    slowest   TRACE.jsonl [-n N] [--cat CAT]  # top-N async spans by duration
    analyze   TRACE.jsonl [--op PREFIX] [-n N]  # trees, critical paths, stages
    flight    DUMP.json [--trace ID]  # inspect a flight-recorder dump

The input is always the JSONL stream written by
:func:`repro.telemetry.exporters.write_jsonl` (the runner's ``--trace``
flag produces one as ``trace.jsonl``).
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import Counter as TallyCounter
from pathlib import Path
from typing import List, Optional, Sequence

from repro.telemetry.analyze import render_report
from repro.telemetry.exporters import read_jsonl, write_chrome_trace
from repro.telemetry.flight import read_flight_dump
from repro.telemetry.tracer import TraceEvent, pair_async_spans


def _load(path: str) -> List[TraceEvent]:
    trace_path = Path(path)
    if not trace_path.exists():
        raise SystemExit(f"error: no such trace file: {path}")
    return read_jsonl(trace_path)


def cmd_summarize(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    print(f"trace: {args.trace}")
    print(f"events: {len(events)}")
    if not events:
        return 0
    t_low = min(e.ts for e in events)
    t_high = max(e.ts for e in events)
    print(f"sim time range: {t_low:.6f}s .. {t_high:.6f}s "
          f"(span {t_high - t_low:.6f}s)")
    by_phase = TallyCounter(e.ph for e in events)
    print("phases: " + ", ".join(
        f"{ph}={by_phase[ph]}" for ph in sorted(by_phase)))
    by_cat = TallyCounter(e.cat for e in events)
    print("categories:")
    for cat, count in sorted(by_cat.items(), key=lambda kv: (-kv[1], kv[0])):
        print(f"  {cat:<12} {count}")
    by_track = TallyCounter(e.track for e in events)
    print("tracks: " + ", ".join(
        f"{track}={by_track[track]}" for track in sorted(by_track)))
    pairs = pair_async_spans(events)
    if pairs:
        durations = [end.ts - begin.ts for begin, end in pairs]
        print(f"async spans: {len(pairs)} closed, "
              f"mean {sum(durations) / len(durations):.6f}s, "
              f"max {max(durations):.6f}s")
    open_begins = len([e for e in events if e.ph == "b"]) - len(pairs)
    if open_begins:
        print(f"async spans left open: {open_begins}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    out = args.output
    if out is None:
        out = str(Path(args.trace).with_suffix(".json"))
    write_chrome_trace(events, out, process_name=args.process_name)
    print(f"wrote {out} ({len(events)} events) — "
          "open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_slowest(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    pairs = pair_async_spans(events)
    if args.cat is not None:
        pairs = [(b, e) for b, e in pairs if b.cat == args.cat]
    if not pairs:
        print("no closed async spans" +
              (f" in category {args.cat!r}" if args.cat else ""))
        return 0
    ranked = sorted(
        pairs, key=lambda pair: (-(pair[1].ts - pair[0].ts), pair[0].ts)
    )[: args.count]
    width = max(len(b.name) for b, _ in ranked)
    print(f"{'span':<{width}}  {'cat':<10} {'id':<12} "
          f"{'start':>12} {'duration':>12}")
    for begin, end in ranked:
        span_id = begin.id if begin.id is not None else "-"
        print(f"{begin.name:<{width}}  {begin.cat:<10} {span_id:<12} "
              f"{begin.ts:>12.6f} {end.ts - begin.ts:>12.6f}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    print(f"trace: {args.trace}")
    print(render_report(events, op=args.op, top=args.count,
                        histograms=not args.no_histograms))
    return 0


def cmd_flight(args: argparse.Namespace) -> int:
    dump_path = Path(args.dump)
    if not dump_path.exists():
        raise SystemExit(f"error: no such flight dump: {args.dump}")
    dump = read_flight_dump(dump_path)
    print(f"flight dump: {args.dump}")
    print(f"reason: {dump.reason} at t={dump.ts:.6f}s")
    if dump.details:
        detail = ", ".join(f"{k}={dump.details[k]}" for k in sorted(dump.details))
        print(f"details: {detail}")
    print(f"events: {len(dump.events)}")
    trace_ids = dump.trace_ids()
    print(f"operation traces captured: {len(trace_ids)}")
    if args.trace_id is not None:
        selected = dump.events_of_trace(args.trace_id)
        if not selected:
            raise SystemExit(
                f"error: no events for trace {args.trace_id!r} in dump")
        for event in selected:
            span_id = event.id if event.id is not None else "-"
            print(f"  {event.ts:>12.6f} {event.ph} {event.cat:<10} "
                  f"{event.name:<32} id={span_id}")
        return 0
    for trace_id in trace_ids:
        selected = dump.events_of_trace(trace_id)
        begins = [e for e in selected if e.ph == "b"]
        ends = {(e.cat, e.id) for e in selected if e.ph == "e"}
        open_count = len(
            [e for e in begins if (e.cat, e.id) not in ends])
        root = begins[0].name if begins else "?"
        print(f"  {trace_id:<16} {root:<24} spans={len(begins)} "
              f"open={open_count}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect and convert deterministic simulation traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="event counts and time range")
    p_sum.add_argument("trace", help="JSONL trace file")
    p_sum.set_defaults(func=cmd_summarize)

    p_conv = sub.add_parser("convert", help="JSONL -> Chrome trace JSON")
    p_conv.add_argument("trace", help="JSONL trace file")
    p_conv.add_argument("-o", "--output", default=None,
                        help="output path (default: input with .json suffix)")
    p_conv.add_argument("--process-name", default="mayflower-sim")
    p_conv.set_defaults(func=cmd_convert)

    p_slow = sub.add_parser("slowest", help="top-N async spans by duration")
    p_slow.add_argument("trace", help="JSONL trace file")
    p_slow.add_argument("-n", "--count", type=int, default=10)
    p_slow.add_argument("--cat", default=None,
                        help="restrict to one category (e.g. transfer, read)")
    p_slow.set_defaults(func=cmd_slowest)

    p_an = sub.add_parser(
        "analyze",
        help="operation trees, critical paths, per-stage histograms")
    p_an.add_argument("trace", help="JSONL trace file (with propagation)")
    p_an.add_argument("--op", default=None,
                      help="operation name prefix (e.g. client.append)")
    p_an.add_argument("-n", "--count", type=int, default=5,
                      help="how many slowest operations to expand")
    p_an.add_argument("--no-histograms", action="store_true",
                      help="skip the per-stage histogram section")
    p_an.set_defaults(func=cmd_analyze)

    p_fl = sub.add_parser("flight", help="inspect a flight-recorder dump")
    p_fl.add_argument("dump", help="flight dump JSON file")
    p_fl.add_argument("--trace", dest="trace_id", default=None,
                      help="print every event of one operation trace")
    p_fl.set_defaults(func=cmd_flight)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else sys.argv[1:])
    try:
        result = args.func(args)
    except BrokenPipeError:
        # Output piped into e.g. `head` which exited early; not an error.
        # Point stdout at devnull so the interpreter's exit-time flush
        # doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    assert isinstance(result, int)
    return result

"""The :class:`Telemetry` facade and the process-wide install point.

A telemetry session bundles one :class:`~repro.telemetry.tracer.Tracer`
and one :class:`~repro.telemetry.metrics.MetricsRegistry` and publishes
itself through :data:`repro.sim.instrument.TELEMETRY`.  Emit sites across
the stack read that global and guard with a single ``is None`` check, so
an uninstalled session costs nothing on the hot paths.

The facade also offers one-call conveniences the emit sites use so each
site stays a two-liner::

    tel = instrument.TELEMETRY
    if tel is not None:
        tel.instant(now, "fault.link_down", "fault", target=link_id)

Use :func:`install`/:func:`uninstall` (or the :func:`session` context
manager, which tests prefer) to arm and disarm.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import ContextManager, Iterator, Mapping, Optional, Sequence

from repro.sim import instrument
from repro.sim.engine import EventLoop

from repro.telemetry.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    TimeSeriesSampler,
)
from repro.telemetry.tracer import Clock, Tracer
from repro.sim.instrument import TraceContext


class Telemetry:
    """One observability session: a tracer plus a metrics registry."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._sampler: Optional[TimeSeriesSampler] = None
        #: Armed flight recorder, reachable by the failure hooks through
        #: ``instrument.flight_trigger`` (None unless attached).
        self.flight: Optional[FlightRecorder] = None

    # ------------------------------------------------------------------
    # Tracer delegation (the emit-site surface)
    # ------------------------------------------------------------------

    def instant(self, ts: float, name: str, cat: str, track: str = "sim",
                **args: object) -> None:
        self.tracer.instant(ts, name, cat, track, **args)

    def begin(self, ts: float, name: str, cat: str, span_id: str,
              track: str = "sim", **args: object) -> None:
        self.tracer.begin(ts, name, cat, span_id, track, **args)

    def end(self, ts: float, name: str, cat: str, span_id: str,
            track: str = "sim", **args: object) -> None:
        self.tracer.end(ts, name, cat, span_id, track, **args)

    def span(self, clock: Clock, name: str, cat: str, track: str = "sim",
             **args: object) -> ContextManager[None]:
        return self.tracer.span(clock, name, cat, track, **args)

    def start_span(self, ts: float, name: str, cat: str, track: str = "sim",
                   span_id: Optional[str] = None, **args: object) -> TraceContext:
        return self.tracer.start_span(ts, name, cat, track, span_id, **args)

    def finish_span(self, ts: float, ctx: TraceContext, name: str, cat: str,
                    track: str = "sim", **args: object) -> None:
        self.tracer.finish_span(ts, ctx, name, cat, track, **args)

    def next_id(self, prefix: str) -> str:
        return self.tracer.next_id(prefix)

    # ------------------------------------------------------------------
    # Flight recorder
    # ------------------------------------------------------------------

    def attach_flight(
        self,
        recorder: Optional[FlightRecorder] = None,
        capacity_per_track: int = DEFAULT_CAPACITY,
    ) -> FlightRecorder:
        """Arm a flight recorder as a tracer observer (replacing any)."""
        self.detach_flight()
        if recorder is None:
            recorder = FlightRecorder(capacity_per_track=capacity_per_track)
        self.flight = recorder
        self.tracer.add_observer(recorder.record)
        return recorder

    def detach_flight(self) -> Optional[FlightRecorder]:
        """Disarm the flight recorder; its dumps stay readable."""
        recorder = self.flight
        if recorder is not None:
            self.tracer.remove_observer(recorder.record)
            self.flight = None
        return recorder

    # ------------------------------------------------------------------
    # Metrics conveniences
    # ------------------------------------------------------------------

    def count(self, name: str, amount: float = 1.0,
              labels: Optional[Mapping[str, str]] = None) -> None:
        """Increment (lazily creating) a counter."""
        self.metrics.counter(name, labels=labels).inc(amount)

    def gauge_set(self, name: str, value: float,
                  labels: Optional[Mapping[str, str]] = None) -> None:
        self.metrics.gauge(name, labels=labels).set(value)

    def observe(self, name: str, value: float,
                buckets: Sequence[float] = DEFAULT_BUCKETS,
                labels: Optional[Mapping[str, str]] = None) -> Histogram:
        """Record into (lazily creating) a histogram."""
        histogram = self.metrics.histogram(name, labels=labels, buckets=buckets)
        histogram.observe(value)
        return histogram

    # ------------------------------------------------------------------
    # Periodic sampling
    # ------------------------------------------------------------------

    def start_sampler(self, loop: EventLoop,
                      interval: float = 1.0) -> TimeSeriesSampler:
        """Create (or restart) the session's periodic probe sampler."""
        if self._sampler is not None:
            self._sampler.stop()
        self._sampler = TimeSeriesSampler(
            loop, interval=interval, tracer=self.tracer, registry=self.metrics
        )
        self._sampler.start()
        return self._sampler

    @property
    def sampler(self) -> Optional[TimeSeriesSampler]:
        return self._sampler

    def stop_sampler(self) -> None:
        if self._sampler is not None:
            self._sampler.stop()

    def close(self) -> None:
        """Stop timers; keeps recorded events/metrics readable."""
        self.stop_sampler()


# ----------------------------------------------------------------------
# Process-wide install point
# ----------------------------------------------------------------------


def install(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Arm a telemetry session (creating one if needed) and return it.

    One session at a time: installing over a live session replaces it
    (the old session stays readable, its sampler is stopped).
    """
    previous = active()
    if previous is not None:
        previous.close()
    session_obj = telemetry if telemetry is not None else Telemetry()
    instrument.set_telemetry(session_obj)
    return session_obj


def uninstall() -> Optional[Telemetry]:
    """Disarm the active session (idempotent); returns it for inspection."""
    session_obj = active()
    if session_obj is not None:
        session_obj.close()
    instrument.set_telemetry(None)
    return session_obj


def active() -> Optional[Telemetry]:
    """The installed session, if any (``None`` for foreign sinks)."""
    sink = instrument.TELEMETRY
    return sink if isinstance(sink, Telemetry) else None


@contextmanager
def session(telemetry: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """``with telemetry.session() as tel: ...`` — arm, run, disarm."""
    session_obj = install(telemetry)
    try:
        yield session_obj
    finally:
        if instrument.TELEMETRY is session_obj:
            uninstall()
        else:  # replaced mid-session; still stop our timers
            session_obj.close()

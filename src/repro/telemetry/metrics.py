"""Counter / Gauge / Histogram primitives and a deterministic registry.

Metrics are plain Python objects with no locks, no background threads and
no wall-clock reads: values change only when simulation code calls
``inc``/``set``/``observe``, and the registry iterates in insertion order,
so rendering is bit-reproducible for a given seed.

A :class:`TimeSeriesSampler` turns callback probes (link utilization,
tracked-flow count, ...) into periodic samples on the simulated clock —
recorded both as Chrome counter events for Perfetto and as in-memory
series for the exporters.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.engine import EventLoop, PeriodicTimer

from repro.telemetry.tracer import Tracer

#: Default histogram bucket upper bounds (seconds-ish scale, +Inf implied).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0
)


class MetricError(ValueError):
    """Invalid metric construction or a name/type collision."""


def _label_key(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Mapping[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels = _label_key(labels)
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease ({amount})")
        self._value += amount


class Gauge:
    """A value that goes up and down; optionally callback-backed.

    A callback gauge reads its value live from a component (e.g.
    ``flowserver.tracked_flow_count``) so registries can expose existing
    counters without double bookkeeping.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        callback: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = _label_key(labels)
        self._callback = callback
        self._value = 0.0

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        return self._value

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise MetricError(f"gauge {self.name} is callback-backed")
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: ``le`` bounds)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(bounds):
            raise MetricError(f"histogram {name} buckets must be sorted: {bounds}")
        self.name = name
        self.help = help
        self.labels = _label_key(labels)
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per ``le`` bound (Prometheus export shape)."""
        total = 0
        out = []
        for raw in self.bucket_counts:
            total += raw
            out.append(total)
        return out


class MetricsRegistry:
    """Get-or-create registry keyed by ``(name, labels)``.

    Creation order is preserved, so the Prometheus dump and snapshots are
    deterministic.  Re-requesting an existing metric returns the same
    object; requesting it with a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}

    def _get_or_create(
        self,
        kind: str,
        name: str,
        factory: Callable[[], object],
        labels: Optional[Mapping[str, str]],
    ) -> object:
        key = (name, _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            existing_kind = getattr(existing, "kind", "?")
            if existing_kind != kind:
                raise MetricError(
                    f"metric {name!r} already registered as {existing_kind}, "
                    f"requested as {kind}"
                )
            return existing
        metric = factory()
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        metric = self._get_or_create(
            "counter", name, lambda: Counter(name, help, labels), labels
        )
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        metric = self._get_or_create(
            "gauge", name, lambda: Gauge(name, help, labels, callback), labels
        )
        assert isinstance(metric, Gauge)
        if callback is not None and metric._callback is None:
            metric._callback = callback
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(
            "histogram", name, lambda: Histogram(name, help, labels, buckets), labels
        )
        assert isinstance(metric, Histogram)
        return metric

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def all_metrics(self) -> List[object]:
        return list(self._metrics.values())

    def get(self, name: str,
            labels: Optional[Mapping[str, str]] = None) -> Optional[object]:
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> float:
        """The scalar value of a counter/gauge (raises if absent)."""
        metric = self.get(name, labels)
        if metric is None:
            raise KeyError(f"no metric {name!r} with labels {labels!r}")
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        raise MetricError(f"metric {name!r} is a {getattr(metric, 'kind', '?')}")

    def snapshot(self) -> Dict[str, object]:
        """Name -> value dict (histograms expand to sum/count/buckets)."""
        out: Dict[str, object] = {}
        for (name, labels), metric in self._metrics.items():
            key = name + _render_labels(labels)
            if isinstance(metric, Histogram):
                out[key] = {
                    "sum": metric.sum,
                    "count": metric.count,
                    "buckets": dict(
                        zip([str(b) for b in metric.bounds] + ["+Inf"],
                            metric.cumulative_counts())
                    ),
                }
            elif isinstance(metric, (Counter, Gauge)):
                out[key] = metric.value
        return out

    # ------------------------------------------------------------------
    # Prometheus text rendering
    # ------------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (0.0.4), deterministic."""
        lines: List[str] = []
        seen_headers: Dict[str, bool] = {}
        for (name, labels), metric in self._metrics.items():
            if not isinstance(metric, (Counter, Gauge, Histogram)):
                continue
            if name not in seen_headers:
                seen_headers[name] = True
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = metric.cumulative_counts()
                for bound, count in zip(metric.bounds, cumulative[:-1]):
                    bucket_labels = labels + (("le", _format_value(bound)),)
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} {count}"
                    )
                inf_labels = labels + (("le", "+Inf"),)
                lines.append(
                    f"{name}_bucket{_render_labels(inf_labels)} {cumulative[-1]}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} {_format_value(metric.sum)}"
                )
                lines.append(f"{name}_count{_render_labels(labels)} {metric.count}")
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} {_format_value(metric.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (ints render without dot)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class TimeSeriesSampler:
    """Periodic probe sampling on the simulated clock.

    Each ``interval`` seconds every registered probe is called (in
    registration order) and its value is recorded three ways: an
    in-memory ``(t, value)`` series, a registry gauge, and — when a
    tracer is attached — a Chrome counter event for Perfetto's
    time-series panes.

    The sampler is an ordinary :class:`PeriodicTimer` client, so it must
    be stopped (or the owning telemetry session closed) before draining
    an event loop to idle.
    """

    def __init__(
        self,
        loop: EventLoop,
        interval: float = 1.0,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._loop = loop
        self.interval = interval
        self._tracer = tracer
        self._registry = registry
        self._probes: List[Tuple[str, Callable[[], float]]] = []
        self.series: Dict[str, List[Tuple[float, float]]] = {}
        self.samples_taken = 0
        self._timer: Optional[PeriodicTimer] = None

    def add_probe(self, name: str, probe: Callable[[], float]) -> None:
        self._probes.append((name, probe))
        self.series.setdefault(name, [])

    def start(self) -> None:
        if self._timer is None or self._timer.stopped:
            self._timer = PeriodicTimer(self._loop, self.interval, self.sample_once)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def sample_once(self) -> None:
        now = self._loop.now
        for name, probe in self._probes:
            value = float(probe())
            self.series[name].append((now, value))
            if self._registry is not None:
                self._registry.gauge(name).set(value)
            if self._tracer is not None:
                self._tracer.counter(now, name, {"value": value})
        self.samples_taken += 1

"""Fault flight recorder: bounded span/event rings, dumped on failure.

A :class:`FlightRecorder` observes every event the active
:class:`~repro.telemetry.tracer.Tracer` records and keeps the most
recent ones in a bounded ring buffer per component track — cheap enough
to leave armed for a whole experiment.  When something goes wrong — the
fault injector fires an event, a SimSanitizer invariant trips, the
interleaving explorer finds a counterexample — :meth:`trigger` freezes a
causally-linked snapshot, so every failure ships with its own trace.

Two details make the snapshot *causally complete* rather than merely
recent:

* begin events of **still-open spans** are indexed separately and merged
  into every dump, so an operation that has been in flight longer than
  the ring's horizon (exactly the kind a fault aborts) still appears
  with its root span and trace id;
* events keep their global record order (a monotone sequence number), so
  a dump is a deterministic, replay-stable slice of the trace.

Dumps serialize to the same JSON shape as the trace exporters and are
inspected with ``python -m repro.telemetry flight DUMP.json``.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Mapping, Optional, Tuple, Union

from repro.telemetry.tracer import TraceEvent

#: Events retained per track between triggers.
DEFAULT_CAPACITY = 512

#: Serialization format version for dump files.
DUMP_VERSION = 1


@dataclass(frozen=True)
class FlightDump:
    """One frozen snapshot: why it fired plus the surviving events."""

    ts: float
    reason: str
    details: Mapping[str, object]
    events: Tuple[TraceEvent, ...]

    def trace_ids(self) -> Tuple[str, ...]:
        """Distinct operation (root) trace ids appearing in the dump."""
        ids = {
            str(event.args["trace"])
            for event in self.events
            if event.args is not None and "trace" in event.args
        }
        return tuple(sorted(ids))

    def events_of_trace(self, trace_id: str) -> Tuple[TraceEvent, ...]:
        """The dump's events belonging to one operation tree."""
        return tuple(
            event
            for event in self.events
            if event.args is not None and event.args.get("trace") == trace_id
        )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "version": DUMP_VERSION,
            "ts": self.ts,
            "reason": self.reason,
            "details": {k: self.details[k] for k in sorted(self.details)},
            "events": [event.to_json_dict() for event in self.events],
        }


class FlightRecorder:
    """Bounded per-track rings plus an open-span index.

    Arm one through :meth:`repro.telemetry.Telemetry.attach_flight`; the
    failure hooks reach it via
    :func:`repro.sim.instrument.flight_trigger`.
    """

    def __init__(self, capacity_per_track: int = DEFAULT_CAPACITY) -> None:
        if capacity_per_track <= 0:
            raise ValueError(
                f"capacity_per_track must be positive, got {capacity_per_track}"
            )
        self.capacity_per_track = capacity_per_track
        self._rings: Dict[str, Deque[Tuple[int, TraceEvent]]] = {}
        #: ``(cat, span_id) -> (seq, begin event)`` for spans not yet
        #: ended — merged into every dump so long-running (and aborted,
        #: hence never-ending) operations survive ring eviction.
        self._open: Dict[Tuple[str, Optional[str]], Tuple[int, TraceEvent]] = {}
        self._seq = itertools.count()
        self.events_seen = 0
        self.dumps: List[FlightDump] = []

    def record(self, event: TraceEvent) -> None:
        """Tracer observer: retain the event in its track's ring."""
        self.events_seen += 1
        seq = next(self._seq)
        ring = self._rings.get(event.track)
        if ring is None:
            ring = deque(maxlen=self.capacity_per_track)
            self._rings[event.track] = ring
        ring.append((seq, event))
        if event.ph == "b":
            self._open[(event.cat, event.id)] = (seq, event)
        elif event.ph == "e":
            self._open.pop((event.cat, event.id), None)

    def open_spans(self) -> int:
        """Number of begun-but-not-ended async spans currently indexed."""
        return len(self._open)

    def trigger(self, ts: float, reason: str, **details: object) -> FlightDump:
        """Freeze a snapshot of the rings plus every open span's begin."""
        merged: Dict[int, TraceEvent] = {}
        for ring in self._rings.values():
            for seq, event in ring:
                merged[seq] = event
        for seq, event in self._open.values():
            merged[seq] = event
        events = tuple(event for _, event in sorted(merged.items()))
        dump = FlightDump(
            ts=ts, reason=reason, details=dict(details), events=events
        )
        self.dumps.append(dump)
        return dump


def write_flight_dump(dump: FlightDump, path: Union[str, Path]) -> Path:
    """Serialize one dump as deterministic JSON."""
    out = Path(path)
    out.write_text(
        json.dumps(dump.to_json_dict(), sort_keys=True,
                   separators=(",", ":"), default=str) + "\n",
        encoding="utf-8",
    )
    return out


def read_flight_dump(path: Union[str, Path]) -> FlightDump:
    """Parse a dump file back into a :class:`FlightDump`."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    events = tuple(
        TraceEvent(
            ts=float(item["ts"]),
            ph=str(item["ph"]),
            cat=str(item["cat"]),
            name=str(item["name"]),
            track=str(item.get("track", "sim")),
            id=item.get("id"),
            args=item.get("args"),
        )
        for item in raw.get("events", [])
    )
    return FlightDump(
        ts=float(raw["ts"]),
        reason=str(raw["reason"]),
        details=dict(raw.get("details", {})),
        events=events,
    )

"""Mayflower reproduction: SDN/filesystem co-design (ICDCS 2016).

A complete Python implementation of *Mayflower: Improving Distributed
Filesystem Performance Through SDN/Filesystem Co-Design* (Rizvi, Li,
Wong, Cao, Cassell — University of Waterloo) and every substrate its
evaluation stands on.

Package map
-----------

=====================  ====================================================
``repro.sim``          deterministic discrete-event engine, processes,
                       seeded random streams
``repro.net``          datacenter topologies, routing, max-min fair
                       sharing, the fluid flow-level network simulator,
                       switch counters, ECMP
``repro.sdn``          OpenFlow-style controller and flow tables
``repro.core``         **the paper's contribution**: the Flowserver —
                       Eq. 2 cost model, Pseudocode 1/2 selection with
                       update-freeze, §4.3 split reads, stats collection,
                       plus the co-designed write placement extension
``repro.kvstore``      log-structured store (WAL/memtable/SSTables)
``repro.rpc``          latency-modelled control-plane RPC with failure
                       injection
``repro.fs``           the distributed filesystem: nameserver,
                       dataservers, client library, placement,
                       consistency modes, membership + re-replication
``repro.consensus``    Multi-Paxos and the replicated nameserver
``repro.baselines``    Nearest, Sinbad-R, Hedera-style scheduling
``repro.workload``     §6.1 traffic matrices and trace serialization
``repro.experiments``  per-figure runners, statistics, reports, charts,
                       the ``python -m repro.experiments`` CLI
``repro.cluster``      the fully wired prototype (Fig. 8)
=====================  ====================================================

Quick start::

    from repro.cluster import Cluster, ClusterConfig

    cluster = Cluster(ClusterConfig(scheme="mayflower"))
    client = cluster.client("pod1-rack0-h0")

See README.md for usage, DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

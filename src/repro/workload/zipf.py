"""Zipf-distributed sampling over a finite catalogue.

File read popularity "follows the Zipf distribution with the skewness
parameter ρ = 1.1" (§6.1.1).  Rank ``k`` (1-based) has probability
proportional to ``k ** -s``; sampling is O(log N) via bisection over the
precomputed CDF.
"""

from __future__ import annotations

import bisect
from random import Random
from typing import List, Sequence


class ZipfSampler:
    """Finite Zipf sampler over ranks ``0 .. n-1`` (rank 0 most popular)."""

    def __init__(self, n: int, skew: float = 1.1):
        if n < 1:
            raise ValueError(f"catalogue size must be >= 1, got {n}")
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        self.n = n
        self.skew = skew
        weights = [(k + 1) ** (-skew) for k in range(n)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against rounding

    def sample(self, rng: Random) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cdf, rng.random())

    def sample_many(self, rng: Random, count: int) -> List[int]:
        return [self.sample(rng) for _ in range(count)]

    def probability(self, rank: int) -> float:
        """Exact probability of one rank."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range 0..{self.n - 1}")
        low = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - low


def zipf_probabilities(n: int, skew: float = 1.1) -> Sequence[float]:
    """The full probability vector (testing/plotting aid)."""
    sampler = ZipfSampler(n, skew)
    return [sampler.probability(k) for k in range(n)]

"""Synthetic workload generation (§6.1.1).

The paper's traffic matrix: read-job arrivals follow a Poisson process
(rate λ per server), file popularity follows a Zipf distribution with
skew ρ = 1.1, clients are placed relative to the requested file's primary
replica with staggered probabilities (R, P, O) — same rack, same pod,
other pod — and replicas are placed under the usual fault-domain
constraints (primary uniform, second replica same pod, third replica in a
different pod).
"""

from repro.workload.generator import (
    FileSpec,
    LocalityDistribution,
    ReadJob,
    Workload,
    WorkloadConfig,
    generate_workload,
)
from repro.workload.trace import load_workload, save_workload
from repro.workload.zipf import ZipfSampler

__all__ = [
    "FileSpec",
    "LocalityDistribution",
    "ReadJob",
    "Workload",
    "WorkloadConfig",
    "ZipfSampler",
    "generate_workload",
    "load_workload",
    "save_workload",
]

"""Workload trace serialization.

Materialized workloads (catalogue + job trace) round-trip through JSON so
an exact experiment input can be archived next to its results, shared, or
re-run against a different scheme — the reproducibility artifact a paper
evaluation should ship.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

from repro.workload.generator import (
    FileSpec,
    LocalityDistribution,
    ReadJob,
    Workload,
    WorkloadConfig,
)

FORMAT_VERSION = 1


def workload_to_dict(workload: Workload) -> dict:
    """Plain-dict form of a workload (JSON-ready)."""
    config = asdict(workload.config)
    config["locality"] = {
        "same_rack": workload.config.locality.same_rack,
        "same_pod": workload.config.locality.same_pod,
        "other_pod": workload.config.locality.other_pod,
    }
    return {
        "format_version": FORMAT_VERSION,
        "config": config,
        "files": [
            {
                "name": f.name,
                "size_bytes": f.size_bytes,
                "replicas": list(f.replicas),
            }
            for f in workload.files
        ],
        "jobs": [
            {
                "job_id": j.job_id,
                "arrival_time": j.arrival_time,
                "client": j.client,
                "file": j.file.name,
                "read_bytes": j.read_bytes,
            }
            for j in workload.jobs
        ],
    }


def workload_from_dict(payload: dict) -> Workload:
    """Rebuild a workload from :func:`workload_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    raw_config = dict(payload["config"])
    raw_config["locality"] = LocalityDistribution(**raw_config["locality"])
    config = WorkloadConfig(**raw_config)
    files = [
        FileSpec(
            name=f["name"],
            size_bytes=f["size_bytes"],
            replicas=tuple(f["replicas"]),
        )
        for f in payload["files"]
    ]
    by_name = {f.name: f for f in files}
    jobs = [
        ReadJob(
            job_id=j["job_id"],
            arrival_time=j["arrival_time"],
            client=j["client"],
            file=by_name[j["file"]],
            read_bytes=j["read_bytes"],
        )
        for j in payload["jobs"]
    ]
    return Workload(config=config, files=files, jobs=jobs)


def save_workload(workload: Workload, path: Union[str, Path]) -> None:
    """Write a workload trace as JSON."""
    Path(path).write_text(json.dumps(workload_to_dict(workload), indent=1))


def load_workload(path: Union[str, Path]) -> Workload:
    """Read a workload trace written by :func:`save_workload`."""
    return workload_from_dict(json.loads(Path(path).read_text()))

"""Workload synthesis: files, placement, arrivals, clients.

:func:`generate_workload` produces a deterministic :class:`Workload` —
a file catalogue with replica placements plus a job trace — from a
:class:`WorkloadConfig` and a seed.  All randomness is drawn from named
streams so changing, say, the arrival rate never reshuffles placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.fs.placement import PaperEvalPlacement, PlacementPolicy
from repro.net.topology import Topology
from repro.sim.randomness import RandomStreams
from repro.workload.zipf import ZipfSampler

#: 256 MB — the paper's default block size and the read size of §6.
DEFAULT_READ_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class LocalityDistribution:
    """Staggered client placement probabilities (R, P, O) of §6.1.1.

    ``same_rack`` (R): client in the primary replica's rack;
    ``same_pod`` (P): same pod, different rack;
    ``other_pod`` (O): a different pod.  Must sum to 1.
    """

    same_rack: float
    same_pod: float
    other_pod: float

    def __post_init__(self):
        total = self.same_rack + self.same_pod + self.other_pod
        if any(p < 0 for p in (self.same_rack, self.same_pod, self.other_pod)):
            raise ValueError(f"locality probabilities must be non-negative: {self}")
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"locality probabilities must sum to 1, got {total}")

    def label(self) -> str:
        return (
            f"({self.same_rack:.2g}, {self.same_pod:.2g}, {self.other_pod:.2g})"
        )


#: The four distributions evaluated in Fig. 5, in paper order.
PAPER_LOCALITIES = (
    LocalityDistribution(0.5, 0.3, 0.2),
    LocalityDistribution(0.3, 0.5, 0.2),
    LocalityDistribution(0.2, 0.3, 0.5),
    LocalityDistribution(1 / 3, 1 / 3, 1 / 3),
)


@dataclass(frozen=True)
class FileSpec:
    """One file in the catalogue."""

    name: str
    size_bytes: int
    replicas: Tuple[str, ...]

    @property
    def primary(self) -> str:
        return self.replicas[0]


@dataclass(frozen=True)
class ReadJob:
    """One read request in the trace."""

    job_id: str
    arrival_time: float
    client: str
    file: FileSpec
    read_bytes: int

    @property
    def size_bits(self) -> float:
        return self.read_bytes * 8.0


@dataclass
class WorkloadConfig:
    """Workload knobs; defaults match §6.1.

    ``arrival_rate_per_server`` is the λ of Fig. 6 (jobs per second per
    server, system-wide rate = λ × num hosts).

    ``file_size_distribution`` selects how catalogue sizes are drawn:

    * ``"fixed"`` — every file is ``file_size_bytes`` (the evaluation's
      256 MB blocks);
    * ``"lognormal"`` — sizes follow §3.1's "hundreds of megabytes to
      tens of gigabytes": a lognormal around ``file_size_bytes`` with
      ``file_size_sigma`` spread, clamped to
      [``min_file_bytes``, ``max_file_bytes``].

    With ``read_whole_file`` set, each job reads its file end to end
    (the "clients often fetch entire files" pattern) instead of a fixed
    ``read_bytes`` block.
    """

    num_files: int = 100
    file_size_bytes: int = DEFAULT_READ_BYTES
    file_size_distribution: str = "fixed"
    file_size_sigma: float = 1.0
    min_file_bytes: int = 100 * 1024 * 1024
    max_file_bytes: int = 32 * 1024 * 1024 * 1024
    read_bytes: int = DEFAULT_READ_BYTES
    read_whole_file: bool = False
    replication: int = 3
    zipf_skew: float = 1.1
    locality: LocalityDistribution = field(
        default_factory=lambda: LocalityDistribution(0.5, 0.3, 0.2)
    )
    arrival_rate_per_server: float = 0.07
    num_jobs: int = 200


@dataclass
class Workload:
    """A fully-materialized workload: catalogue + job trace."""

    config: WorkloadConfig
    files: List[FileSpec]
    jobs: List[ReadJob]

    @property
    def duration(self) -> float:
        return self.jobs[-1].arrival_time if self.jobs else 0.0


def generate_workload(
    topology: Topology,
    config: WorkloadConfig,
    seed: int,
    placement: Optional[PlacementPolicy] = None,
) -> Workload:
    """Materialize a deterministic workload for ``topology``.

    Clients are placed relative to the chosen file's *primary* replica per
    the staggered distribution, always excluding the replica hosts
    themselves (the paper ignores fully-local reads, §6.4).
    """
    streams = RandomStreams(seed)
    placement_rng = streams.stream("placement")
    popularity_rng = streams.stream("popularity")
    arrival_rng = streams.stream("arrivals")
    locality_rng = streams.stream("locality")

    policy = placement or PaperEvalPlacement(topology, placement_rng)
    size_rng = streams.stream("file-sizes")
    files = [
        FileSpec(
            name=f"file{i:05d}",
            size_bytes=_draw_file_size(config, size_rng),
            replicas=tuple(policy.place(config.replication)),
        )
        for i in range(config.num_files)
    ]

    sampler = ZipfSampler(config.num_files, config.zipf_skew)
    system_rate = config.arrival_rate_per_server * len(topology.hosts)
    if system_rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {system_rate}")

    jobs: List[ReadJob] = []
    now = 0.0
    for j in range(config.num_jobs):
        now += arrival_rng.expovariate(system_rate)
        file = files[sampler.sample(popularity_rng)]
        client = _place_client(topology, file, config.locality, locality_rng)
        read_bytes = (
            file.size_bytes
            if config.read_whole_file
            else min(config.read_bytes, file.size_bytes)
        )
        jobs.append(
            ReadJob(
                job_id=f"job{j:06d}",
                arrival_time=now,
                client=client,
                file=file,
                read_bytes=read_bytes,
            )
        )
    return Workload(config=config, files=files, jobs=jobs)


def _draw_file_size(config: WorkloadConfig, rng) -> int:
    """One catalogue file size per the configured distribution."""
    if config.file_size_distribution == "fixed":
        return config.file_size_bytes
    if config.file_size_distribution == "lognormal":
        mu = math.log(config.file_size_bytes)
        size = rng.lognormvariate(mu, config.file_size_sigma)
        return int(min(max(size, config.min_file_bytes), config.max_file_bytes))
    raise ValueError(
        f"unknown file_size_distribution {config.file_size_distribution!r}"
    )


def _place_client(
    topology: Topology,
    file: FileSpec,
    locality: LocalityDistribution,
    rng,
) -> str:
    """Pick a client host per the staggered locality distribution.

    Falls through to broader scopes when a bucket has no eligible host
    (e.g. every same-rack host is a replica).
    """
    primary_host = topology.hosts[file.primary]
    replicas = set(file.replicas)

    def eligible(hosts: Sequence[str]) -> List[str]:
        return sorted(h for h in hosts if h not in replicas)

    same_rack = eligible(
        h.host_id for h in topology.hosts_in_rack(primary_host.rack)
    )
    same_pod = eligible(
        h.host_id
        for h in topology.hosts_in_pod(primary_host.pod)
        if h.rack != primary_host.rack
    )
    other_pod = eligible(
        h.host_id
        for h in topology.hosts.values()
        if h.pod != primary_host.pod
    )

    draw = rng.random()
    buckets: List[List[str]]
    if draw < locality.same_rack:
        buckets = [same_rack, same_pod, other_pod]
    elif draw < locality.same_rack + locality.same_pod:
        buckets = [same_pod, same_rack, other_pod]
    else:
        buckets = [other_pod, same_pod, same_rack]
    for bucket in buckets:
        if bucket:
            return bucket[rng.randrange(len(bucket))]
    raise ValueError("no eligible client host in the topology")

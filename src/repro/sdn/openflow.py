"""OpenFlow-style control messages.

A deliberately small subset of the protocol — exactly the messages the
Mayflower Flowserver exchanges with switches through the controller:
FlowMod (add/delete), FlowRemoved notifications, and the two statistics
replies.  Messages are immutable dataclasses; the "wire" is in-process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.net.switch import FlowStat, PortStat


@dataclass(frozen=True)
class FlowModAdd:
    """Install a forwarding entry for ``flow_id`` on ``switch_id``.

    ``out_link_id`` is the directed link the switch must forward the flow
    onto (the OpenFlow "output port" action).
    """

    switch_id: str
    flow_id: str
    out_link_id: str


@dataclass(frozen=True)
class FlowModDelete:
    """Remove the forwarding entry for ``flow_id`` from ``switch_id``."""

    switch_id: str
    flow_id: str


@dataclass(frozen=True)
class FlowRemoved:
    """Switch-to-controller notification that a flow's entry was removed.

    Emitted when a data transfer completes (or is torn down); the
    Flowserver uses these to drop its tracked-flow state immediately
    instead of waiting for the next stats poll.  ``aborted`` marks removals
    caused by a link/switch failure rather than a completed transfer.
    """

    flow_id: str
    src: str
    dst: str
    bytes_sent: float
    duration: float
    aborted: bool = False


@dataclass(frozen=True)
class PortStatus:
    """Switch-to-controller notification that a port changed state.

    The controller emits one per directed link when a link or switch
    fails/recovers, mirroring OpenFlow's OFPT_PORT_STATUS message.
    """

    switch_id: str
    link_id: str
    up: bool


@dataclass(frozen=True)
class PortStatsReply:
    """Reply to a port-stats request: one counter per directed link."""

    switch_id: str
    timestamp: float
    ports: Tuple[PortStat, ...]


@dataclass(frozen=True)
class FlowStatsReply:
    """Reply to a flow-stats request, restricted to locally-sourced flows."""

    switch_id: str
    timestamp: float
    flows: Tuple[FlowStat, ...]


@dataclass(frozen=True)
class CounterPush:
    """Switch-to-controller proactive counter report (adaptive monitoring).

    Under ``poll_mode="adaptive"`` the collector registers a byte-delta
    threshold per monitored flow; the switch then *pushes* the flow's
    cumulative counter whenever it has advanced past the threshold since
    the last report, instead of waiting to be polled.  ``seq`` increments
    per (switch, flow) subscription so the collector can discard
    duplicate or reordered pushes — reconciliation against the poll
    schedule must be idempotent.
    """

    switch_id: str
    flow_id: str
    seq: int
    timestamp: float
    bytes_sent: float
    remaining_bits: float


@dataclass(frozen=True)
class CounterPushBatch:
    """Several same-switch counter reports coalesced into one message.

    When multiple subscriptions on one switch cross their thresholds in
    the same switch-local check interval, the switch sends a single
    multi-flow message instead of one :class:`CounterPush` per flow —
    the same records, one channel crossing.  Each report keeps its own
    per-subscription ``seq`` so the collector reconciles them exactly as
    it would individual pushes.
    """

    switch_id: str
    timestamp: float
    reports: Tuple[CounterPush, ...]

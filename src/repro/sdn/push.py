"""Switch-side delta push for flow counters (adaptive monitoring).

Under fixed-interval monitoring every byte of counter freshness costs a
round trip.  :class:`DeltaPushService` inverts the channel for selected
flows: the collector registers a byte-delta **threshold** per
(switch, flow), and the switch proactively reports the flow's cumulative
counter only when it has advanced past the threshold since the last
report — whether that last report was a push or an ordinary poll.

The periodic check runs *on the switch* (it reads local counters), so it
costs no controller-channel messages; only an actual
:class:`~repro.sdn.openflow.CounterPush` crossing the channel does.
Pushes carry a per-subscription sequence number so the collector can
reconcile them idempotently against its own poll schedule.

``suppress`` models the ``push_loss`` fault: the switch keeps generating
reports but none reach the controller — the collector's poll schedule is
the backstop that keeps every flow observed within its cadence ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from repro.sdn.openflow import CounterPush, CounterPushBatch
from repro.sim.engine import EventLoop, PeriodicTimer

if TYPE_CHECKING:
    from repro.sdn.controller import Controller

#: Estimated OpenFlow message size (bytes) of one unsolicited counter
#: report: a multipart header plus a single flow entry.  Sized like a
#: one-flow OFPMP_FLOW reply — the push is the same record, unasked-for.
PUSH_MESSAGE_BYTES = 100

#: Marginal size (bytes) of each additional flow record in a coalesced
#: multi-flow push: the entry body without the repeated message header.
PUSH_REPORT_BYTES = 40


@dataclass
class PushRegistration:
    """One (switch, flow) push subscription."""

    switch_id: str
    flow_id: str
    threshold_bytes: float
    #: Cumulative counter at the last report the controller has (from
    #: either a push or a poll); deltas are measured against this.
    last_reported_bytes: float
    #: Monotonic per-subscription sequence, bumped on every push sent.
    seq: int = 0


class DeltaPushService:
    """Runs the switch-local threshold checks and delivers pushes.

    Parameters
    ----------
    loop:
        The simulation clock (the "switch-local timer").
    controller:
        Used only to read switch liveness and counters; a down switch
        generates nothing.
    sink:
        Where pushes land (the adaptive collector's reconciliation hook).
    check_interval:
        Switch-local counter check period, seconds.
    """

    def __init__(
        self,
        loop: EventLoop,
        controller: "Controller",
        sink: Callable[[Union[CounterPush, CounterPushBatch]], None],
        check_interval: float,
        coalesce: bool = True,
    ) -> None:
        if check_interval <= 0:
            raise ValueError(
                f"check_interval must be positive, got {check_interval}"
            )
        self._loop = loop
        self._controller = controller
        self._sink = sink
        self.check_interval = check_interval
        #: Coalesce same-switch, same-interval threshold crossings into
        #: one :class:`CounterPushBatch` instead of N single pushes.  A
        #: single crossing still travels as a plain :class:`CounterPush`,
        #: so the flag only matters under simultaneous crossings.
        self.coalesce = coalesce
        #: switch id -> flow id -> registration
        self._regs: Dict[str, Dict[str, PushRegistration]] = {}
        #: Fault hook (``push_loss``): reports are generated but dropped.
        self.suppress = False
        self.registrations_total = 0
        self.pushes_sent = 0
        self.pushes_lost = 0
        self.batches_sent = 0
        self.reports_coalesced = 0
        self.checks_run = 0
        self._timer: Optional[PeriodicTimer] = None

    # ------------------------------------------------------------------
    # Subscription management (collector-facing)
    # ------------------------------------------------------------------

    def register(
        self,
        switch_id: str,
        flow_id: str,
        threshold_bytes: float,
        baseline_bytes: float = 0.0,
    ) -> None:
        """Subscribe ``flow_id``'s counter on ``switch_id`` (idempotent).

        ``baseline_bytes`` is the counter value the controller already
        has; the first push fires once the counter exceeds it by the
        threshold.
        """
        if threshold_bytes <= 0:
            raise ValueError(
                f"threshold_bytes must be positive, got {threshold_bytes}"
            )
        per_switch = self._regs.setdefault(switch_id, {})
        if flow_id not in per_switch:
            per_switch[flow_id] = PushRegistration(
                switch_id=switch_id,
                flow_id=flow_id,
                threshold_bytes=threshold_bytes,
                last_reported_bytes=baseline_bytes,
            )
            self.registrations_total += 1
        self._ensure_running()

    def unregister(self, flow_id: str, switch_id: Optional[str] = None) -> None:
        """Drop the flow's subscription(s); idempotent."""
        targets = [switch_id] if switch_id is not None else sorted(self._regs)
        for sid in targets:
            per_switch = self._regs.get(sid)
            if per_switch is not None:
                per_switch.pop(flow_id, None)
                if not per_switch:
                    del self._regs[sid]
        if not self._regs:
            self.stop()

    def note_reported(self, flow_id: str, bytes_sent: float) -> None:
        """Record that the controller saw the counter by other means.

        Called by the collector after a successful poll, so the push
        threshold measures the delta since the *last report of any kind*
        and a poll-then-push sequence cannot double-report one delta.
        """
        for sid in sorted(self._regs):
            reg = self._regs[sid].get(flow_id)
            if reg is not None and bytes_sent > reg.last_reported_bytes:
                reg.last_reported_bytes = bytes_sent

    def registered_flows(self) -> int:
        return sum(len(per_switch) for per_switch in self._regs.values())

    # ------------------------------------------------------------------
    # Switch-local check loop
    # ------------------------------------------------------------------

    def _ensure_running(self) -> None:
        if self._timer is None or self._timer.stopped:
            self._timer = PeriodicTimer(
                self._loop, self.check_interval, self._tick
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def _tick(self) -> None:
        self.checks_run += 1
        now = self._loop.now
        for switch_id in sorted(self._regs):
            if not self._controller.switch_is_up(switch_id):
                # A dead switch pushes nothing; its flows were aborted
                # and the collector's poll schedule notices the silence.
                continue
            per_switch = self._regs[switch_id]
            switch = self._controller.switch(switch_id)
            crossed: List[CounterPush] = []
            for stat in switch.flow_stats_for(sorted(per_switch)):
                reg = per_switch[stat.flow_id]
                delta = stat.bytes_sent - reg.last_reported_bytes
                if delta < reg.threshold_bytes:
                    continue
                reg.last_reported_bytes = stat.bytes_sent
                reg.seq += 1
                if self.suppress:
                    self.pushes_lost += 1
                    continue
                crossed.append(
                    CounterPush(
                        switch_id=switch_id,
                        flow_id=stat.flow_id,
                        seq=reg.seq,
                        timestamp=now,
                        bytes_sent=stat.bytes_sent,
                        remaining_bits=stat.remaining_bits,
                    )
                )
            if not crossed:
                continue
            if self.coalesce and len(crossed) > 1:
                # One channel crossing carries every report that fired
                # in this check interval on this switch.
                self.pushes_sent += 1
                self.batches_sent += 1
                self.reports_coalesced += len(crossed) - 1
                self._sink(
                    CounterPushBatch(
                        switch_id=switch_id,
                        timestamp=now,
                        reports=tuple(crossed),
                    )
                )
            else:
                for push in crossed:
                    self.pushes_sent += 1
                    self._sink(push)
        if not self._regs:
            self.stop()

"""The SDN controller.

Plays the role Floodlight plays in the paper's prototype: it owns the
switch connections, programs flow tables along assigned paths, relays
port/flow statistics requests, and fans FlowRemoved notifications out to
registered listeners (the Flowserver chief among them).

The controller also owns the binding between a *routed* flow (a path
installed in switch tables) and the *fluid* flow in the network simulator:
:meth:`Controller.start_transfer` installs rules and starts the transfer
atomically, and tears the rules down when the transfer completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.net.routing import Path
from repro.net.simulator import Flow, FlowAborted, FlowNetwork
from repro.net.switch import Switch, build_switches
from repro.net.view import NetworkView
from repro.sim import instrument
from repro.sdn.flowtable import FlowTable
from repro.sdn.openflow import FlowRemoved, FlowStatsReply, PortStatsReply, PortStatus


class SwitchUnreachableError(RuntimeError):
    """A statistics request was sent to a failed/disconnected switch."""


@dataclass
class FlowRecord:
    """Controller-side bookkeeping for one installed flow."""

    flow_id: str
    path: Path
    size_bits: float
    installed_at: float


class Controller:
    """Centralized network controller over a simulated network.

    Parameters
    ----------
    network:
        The flow-level network simulation (provides time and transfers).
    """

    def __init__(self, network: FlowNetwork):
        self._network = network
        self._loop = network.loop
        self._switches: Dict[str, Switch] = build_switches(network)
        self._tables: Dict[str, FlowTable] = {
            sid: FlowTable(sid) for sid in self._switches
        }
        self._records: Dict[str, FlowRecord] = {}
        self._removed_listeners: List[Callable[[FlowRemoved], None]] = []
        self._port_status_listeners: List[Callable[[PortStatus], None]] = []
        self._down_switches: Set[str] = set()
        self.flows_aborted = 0
        instrument.notify_component("controller", self)

    # ------------------------------------------------------------------
    # Topology / switch access
    # ------------------------------------------------------------------

    @property
    def network(self) -> FlowNetwork:
        return self._network

    @property
    def view(self) -> NetworkView:
        """Observation-only surface of the controlled network.

        Schedulers and monitors that read (never mutate) network state
        should take this rather than :attr:`network`: the protocol type
        makes accidental mutation a type error and lets tests substitute
        replay/mock networks.
        """
        return self._network

    @property
    def now(self) -> float:
        return self._loop.now

    def switch(self, switch_id: str) -> Switch:
        return self._switches[switch_id]

    def flow_table(self, switch_id: str) -> FlowTable:
        return self._tables[switch_id]

    def edge_switch_ids(self) -> List[str]:
        from repro.net.topology import Tier

        return [s.switch_id for s in self._network.topology.switches_in_tier(Tier.EDGE)]

    def installed_flows(self) -> Dict[str, FlowRecord]:
        """Live view of currently installed flows (do not mutate)."""
        return self._records

    # ------------------------------------------------------------------
    # Flow programming
    # ------------------------------------------------------------------

    def install_path(self, flow_id: str, path: Path, size_bits: float) -> None:
        """Program flow-table entries on every switch along ``path``."""
        if flow_id in self._records:
            raise ValueError(f"flow {flow_id!r} already installed")
        topo = self._network.topology
        for link_id in path.link_ids:
            link = topo.links[link_id]
            if link.src in self._tables:
                self._tables[link.src].install(flow_id, link_id, self._loop.now)
        self._records[flow_id] = FlowRecord(
            flow_id=flow_id,
            path=path,
            size_bits=size_bits,
            installed_at=self._loop.now,
        )

    def uninstall_path(self, flow_id: str) -> None:
        """Remove the flow's entries from every switch (idempotent)."""
        record = self._records.pop(flow_id, None)
        if record is None:
            return
        topo = self._network.topology
        for link_id in record.path.link_ids:
            link = topo.links[link_id]
            if link.src in self._tables:
                self._tables[link.src].remove(flow_id)

    def start_transfer(
        self,
        flow_id: str,
        path: Path,
        size_bits: float,
        on_complete: Optional[Callable[[Flow], None]] = None,
        on_abort: Optional[Callable[[Flow, FlowAborted], None]] = None,
        job_id: Optional[str] = None,
    ) -> Flow:
        """Install rules and start the data transfer.

        When the transfer completes the controller uninstalls the rules,
        emits a :class:`FlowRemoved` to all listeners, and then invokes
        ``on_complete``.  If a link on the path fails mid-transfer the
        rules are likewise uninstalled, a :class:`FlowRemoved` with
        ``aborted=True`` is emitted, and ``on_abort`` (if any) runs.
        """
        self.install_path(flow_id, path, size_bits)
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.begin(self._loop.now, "transfer", "transfer", flow_id,
                      track="transfers", src=path.src, dst=path.dst,
                      size_bits=size_bits)
            tel.count("transfers_started_total")

        def _finished(flow: Flow) -> None:
            self.uninstall_path(flow_id)
            removed = FlowRemoved(
                flow_id=flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                bytes_sent=flow.bytes_sent,
                duration=(flow.end_time or self._loop.now) - flow.start_time,
            )
            tel = instrument.TELEMETRY
            if tel is not None:
                tel.end(self._loop.now, "transfer", "transfer", flow_id,
                        track="transfers", outcome="completed",
                        bytes_sent=flow.bytes_sent)
                tel.count("transfers_completed_total")
            for listener in list(self._removed_listeners):
                listener(removed)
            if on_complete is not None:
                on_complete(flow)

        def _aborted(flow: Flow, exc: FlowAborted) -> None:
            self.uninstall_path(flow_id)
            self.flows_aborted += 1
            removed = FlowRemoved(
                flow_id=flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                bytes_sent=flow.bytes_sent,
                duration=self._loop.now - flow.start_time,
                aborted=True,
            )
            tel = instrument.TELEMETRY
            if tel is not None:
                tel.end(self._loop.now, "transfer", "transfer", flow_id,
                        track="transfers", outcome="aborted",
                        reason=str(exc), bytes_sent=flow.bytes_sent)
                tel.count("transfers_aborted_total")
            for listener in list(self._removed_listeners):
                listener(removed)
            if on_abort is not None:
                on_abort(flow, exc)

        try:
            return self._network.start_flow(
                flow_id,
                path,
                size_bits,
                on_complete=_finished,
                on_abort=_aborted,
                job_id=job_id,
            )
        except Exception:
            if tel is not None:
                tel.end(self._loop.now, "transfer", "transfer", flow_id,
                        track="transfers", outcome="failed-to-start")
            self.uninstall_path(flow_id)
            raise

    def abort_transfer(self, flow_id: str) -> None:
        """Cancel an in-flight transfer and clean up its rules."""
        self._network.cancel_flow(flow_id)
        self.uninstall_path(flow_id)
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.end(self._loop.now, "transfer", "transfer", flow_id,
                    track="transfers", outcome="cancelled")
            tel.count("transfers_aborted_total")

    def reroute_transfer(self, flow_id: str, new_path: Path) -> None:
        """Move an in-flight transfer to a new path, updating flow tables.

        This is the primitive a centralized flow scheduler (Hedera/MicroTE
        style) uses: old rules are removed, new rules installed, and the
        fluid flow continues with its remaining volume on the new route.
        """
        record = self._records.get(flow_id)
        if record is None:
            raise KeyError(f"flow {flow_id!r} is not installed")
        self._network.reroute_flow(flow_id, new_path)
        topo = self._network.topology
        for link_id in record.path.link_ids:
            link = topo.links[link_id]
            if link.src in self._tables:
                self._tables[link.src].remove(flow_id)
        for link_id in new_path.link_ids:
            link = topo.links[link_id]
            if link.src in self._tables:
                self._tables[link.src].install(flow_id, link_id, self._loop.now)
        record.path = new_path

    # ------------------------------------------------------------------
    # Notifications
    # ------------------------------------------------------------------

    def add_flow_removed_listener(self, listener: Callable[[FlowRemoved], None]) -> None:
        """Subscribe to FlowRemoved events (e.g. the Flowserver)."""
        self._removed_listeners.append(listener)

    def add_port_status_listener(self, listener: Callable[[PortStatus], None]) -> None:
        """Subscribe to PortStatus events (link/switch up-down transitions)."""
        self._port_status_listeners.append(listener)

    def _emit_port_status(self, link_id: str, up: bool) -> None:
        link = self._network.topology.links[link_id]
        owner = link.src if link.src in self._switches else link.dst
        if owner not in self._switches:
            return
        status = PortStatus(switch_id=owner, link_id=link_id, up=up)
        for listener in list(self._port_status_listeners):
            listener(status)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def fail_link(self, link_id: str) -> List[Flow]:
        """Take one directed link down, aborting the flows routed over it.

        Abort callbacks (and the matching ``FlowRemoved(aborted=True)``
        notifications) fire before this returns; the list of victims is
        returned for logging.
        """
        victims = self._network.fail_link(link_id)
        self._emit_port_status(link_id, up=False)
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(self._loop.now, "net.link_down", "net",
                        link=link_id, victims=len(victims))
        return victims

    def restore_link(self, link_id: str) -> None:
        """Bring a previously failed link back into service."""
        self._network.restore_link(link_id)
        self._emit_port_status(link_id, up=True)
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(self._loop.now, "net.link_up", "net", link=link_id)

    def fail_switch(self, switch_id: str) -> List[Flow]:
        """Fail a switch: all adjacent links go down and stats requests
        to it raise :class:`SwitchUnreachableError` until recovery."""
        if switch_id not in self._switches:
            raise KeyError(f"unknown switch {switch_id!r}")
        self._down_switches.add(switch_id)
        victims = self._network.fail_node_links(switch_id)
        for link_id in self._adjacent_link_ids(switch_id):
            self._emit_port_status(link_id, up=False)
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(self._loop.now, "net.switch_down", "net",
                        switch=switch_id, victims=len(victims))
        return victims

    def recover_switch(self, switch_id: str) -> None:
        """Bring a failed switch (and its links) back into service."""
        if switch_id not in self._switches:
            raise KeyError(f"unknown switch {switch_id!r}")
        self._down_switches.discard(switch_id)
        self._network.restore_node_links(switch_id)
        for link_id in self._adjacent_link_ids(switch_id):
            self._emit_port_status(link_id, up=True)
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(self._loop.now, "net.switch_up", "net",
                        switch=switch_id)

    def fail_host(self, host_id: str) -> List[Flow]:
        """Fail a host's access links (both directions), aborting its flows."""
        return self._network.fail_node_links(host_id)

    def recover_host(self, host_id: str) -> None:
        """Restore a host's access links."""
        self._network.restore_node_links(host_id)

    def _adjacent_link_ids(self, node_id: str) -> List[str]:
        topo = self._network.topology
        return sorted(
            link_id
            for link_id, link in topo.links.items()
            if link.src == node_id or link.dst == node_id
        )

    def link_is_up(self, link_id: str) -> bool:
        return self._network.link_is_up(link_id)

    def switch_is_up(self, switch_id: str) -> bool:
        return switch_id not in self._down_switches

    def path_is_up(self, path: Path) -> bool:
        """True when every link on the path (and every switch it crosses)
        is currently in service."""
        if not self._network.path_is_up(path):
            return False
        for link_id in path.link_ids:
            link = self._network.topology.links[link_id]
            for node in (link.src, link.dst):
                if node in self._down_switches:
                    return False
        return True

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def query_port_stats(self, switch_id: str) -> PortStatsReply:
        """Fetch cumulative per-port byte counters from one switch."""
        if switch_id in self._down_switches:
            raise SwitchUnreachableError(f"switch {switch_id!r} is unreachable")
        switch = self._switches[switch_id]
        return PortStatsReply(
            switch_id=switch_id,
            timestamp=self._loop.now,
            ports=tuple(switch.port_stats()),
        )

    def query_flow_stats(self, switch_id: str) -> FlowStatsReply:
        """Fetch counters for flows sourced at hosts on one edge switch."""
        if switch_id in self._down_switches:
            raise SwitchUnreachableError(f"switch {switch_id!r} is unreachable")
        switch = self._switches[switch_id]
        return FlowStatsReply(
            switch_id=switch_id,
            timestamp=self._loop.now,
            flows=tuple(switch.flow_stats()),
        )

    def query_flow_stats_for(
        self, switch_id: str, flow_ids: Sequence[str]
    ) -> FlowStatsReply:
        """Targeted stats request: counters for specific flows on a switch.

        The OFPMP_FLOW exact-match variant the adaptive monitoring layer
        uses: only flows that actually have a table entry on ``switch_id``
        are queried (a match on a flow the switch never saw returns no
        entry, exactly like hardware), so the reply's size reflects what
        the switch can answer, not what the collector hoped for.
        """
        if switch_id in self._down_switches:
            raise SwitchUnreachableError(f"switch {switch_id!r} is unreachable")
        table = self._tables[switch_id]
        matched = [fid for fid in sorted(flow_ids) if fid in table]
        switch = self._switches[switch_id]
        return FlowStatsReply(
            switch_id=switch_id,
            timestamp=self._loop.now,
            flows=tuple(switch.flow_stats_for(matched)),
        )

    def switches_on_path(self, path: Path) -> List[str]:
        """The switches a path traverses, in hop order (monitoring points).

        Every one of them carries the flow's table entry while it is
        installed, so any of them can serve as the flow's assigned
        polling point under adaptive monitoring.
        """
        seen: List[str] = []
        topo = self._network.topology
        for link_id in path.link_ids:
            link = topo.links[link_id]
            for node in (link.src, link.dst):
                if node in self._switches and node not in seen:
                    seen.append(node)
        return seen

    def verify_tables_consistent(self) -> List[str]:
        """Sanity check: every active flow has entries along its whole path.

        Returns a list of human-readable problems (empty when consistent);
        used by tests and failure-injection experiments.
        """
        problems = []
        topo = self._network.topology
        for flow_id, record in self._records.items():
            for link_id in record.path.link_ids:
                link = topo.links[link_id]
                if link.src in self._tables:
                    if self._tables[link.src].lookup(flow_id) != link_id:
                        problems.append(
                            f"flow {flow_id}: switch {link.src} missing entry for {link_id}"
                        )
        for switch_id, table in self._tables.items():
            for entry in table.entries():
                if entry.flow_id not in self._records:
                    problems.append(
                        f"switch {switch_id}: stale entry for {entry.flow_id}"
                    )
        return problems

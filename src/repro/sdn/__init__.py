"""Software-defined networking control plane.

A simplified but faithful OpenFlow-style controller: switches keep flow
tables programmed by FlowMod messages, the controller installs one flow
table entry per switch along an assigned path, observes FlowRemoved
notifications when transfers finish, and answers port/flow statistics
queries.  The Mayflower Flowserver (:mod:`repro.core`) runs *inside* this
controller exactly as the paper runs it inside Floodlight.
"""

from repro.sdn.controller import Controller, FlowRecord
from repro.sdn.domain import DomainController
from repro.sdn.flowtable import FlowTable, FlowTableEntry
from repro.sdn.openflow import (
    CounterPush,
    CounterPushBatch,
    FlowModAdd,
    FlowModDelete,
    FlowRemoved,
    FlowStatsReply,
    PortStatsReply,
)

__all__ = [
    "Controller",
    "CounterPush",
    "CounterPushBatch",
    "DomainController",
    "FlowModAdd",
    "FlowModDelete",
    "FlowRecord",
    "FlowRemoved",
    "FlowStatsReply",
    "FlowTable",
    "FlowTableEntry",
    "PortStatsReply",
]

"""Per-pod controller domains (sharded control plane).

A :class:`DomainController` is the slice of the SDN controller one
controller domain sees: statistics collection is restricted to the
domain's own edge switches and its :attr:`view` is a
:class:`~repro.net.scoped_view.ScopedNetworkView` over the pod's links,
while flow programming, liveness queries and event subscriptions
delegate to the shared underlying :class:`~repro.sdn.controller.
Controller` (there is still exactly one physical control channel to each
switch — domains partition *responsibility*, not the wire).

A :class:`~repro.core.domains.DomainFlowserver` constructed over a
``DomainController`` therefore polls only its pod's edge switches, and
its adaptive push subscriptions land only on in-domain switches, without
any change to the Flowserver or collector code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Sequence

from repro.net.scoped_view import ScopedNetworkView, pod_scope_link_ids
from repro.net.topology import Tier

if TYPE_CHECKING:
    from repro.net.simulator import FlowNetwork
    from repro.net.view import NetworkView
    from repro.sdn.controller import Controller


class DomainController:
    """One pod's scoped window onto the shared SDN controller.

    Everything not explicitly scoped below delegates verbatim to the
    inner controller, so the object is a drop-in ``Controller`` for the
    Flowserver and both stats collectors.
    """

    def __init__(self, inner: "Controller", pod: str) -> None:
        topology = inner.network.topology
        if pod not in topology.pods():
            raise ValueError(f"unknown pod {pod!r}")
        self._inner = inner
        self.pod = pod
        self._edge_switch_ids: List[str] = sorted(
            s.switch_id
            for s in topology.switches_in_tier(Tier.EDGE)
            if s.pod == pod
        )
        self._hosts = frozenset(
            h.host_id for h in topology.hosts_in_pod(pod)
        )
        self._view = ScopedNetworkView(
            inner.view, pod_scope_link_ids(topology, pod), label=pod
        )

    # -- scoped surface --------------------------------------------------

    @property
    def view(self) -> "NetworkView":
        """The domain's link-scoped network view."""
        return self._view

    def edge_switch_ids(self) -> List[str]:
        """Only this pod's edge switches — the collector's poll set."""
        return list(self._edge_switch_ids)

    def owns_host(self, host_id: str) -> bool:
        return host_id in self._hosts

    @property
    def hosts(self) -> Sequence[str]:
        return sorted(self._hosts)

    # -- shared surface (delegated) --------------------------------------

    @property
    def inner(self) -> "Controller":
        """The shared fabric-wide controller."""
        return self._inner

    @property
    def network(self) -> "FlowNetwork":
        return self._inner.network

    @property
    def now(self) -> float:
        return self._inner.now

    def __getattr__(self, name: str) -> Any:
        # Flow programming, liveness, stats queries, event listeners and
        # failure hooks all behave identically from every domain.
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DomainController(pod={self.pod!r}, "
            f"edges={len(self._edge_switch_ids)})"
        )

"""Per-switch flow tables.

Each switch keeps an exact-match table from flow id to output link.  The
controller programs entries with FlowMod messages when the Flowserver
assigns a path (§3.3: "the Flowserver will also install the flow path for
this request in the OpenFlow switches").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class FlowTableEntry:
    """One exact-match forwarding rule."""

    flow_id: str
    out_link_id: str
    installed_at: float


class FlowTable:
    """Exact-match flow table for one switch."""

    def __init__(self, switch_id: str):
        self.switch_id = switch_id
        self._entries: Dict[str, FlowTableEntry] = {}

    def install(self, flow_id: str, out_link_id: str, now: float) -> None:
        """Add (or overwrite) the rule for ``flow_id``."""
        self._entries[flow_id] = FlowTableEntry(flow_id, out_link_id, now)

    def remove(self, flow_id: str) -> bool:
        """Delete the rule; returns whether it existed."""
        return self._entries.pop(flow_id, None) is not None

    def lookup(self, flow_id: str) -> Optional[str]:
        """Output link for ``flow_id``, or ``None`` on a table miss."""
        entry = self._entries.get(flow_id)
        return entry.out_link_id if entry else None

    def entries(self) -> List[FlowTableEntry]:
        """All rules, sorted by flow id (deterministic)."""
        return [self._entries[fid] for fid in sorted(self._entries)]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, flow_id: str) -> bool:
        return flow_id in self._entries

"""File and chunk metadata.

Files are partitioned into large fixed-size chunks (§3.3, default 256 MB
per §5).  Replication happens at *file* granularity: every replica
dataserver holds a full copy of the file, so the file→dataservers mapping
is one list, not one per chunk.  ``replicas[0]`` is the primary, which
orders appends.
"""

from __future__ import annotations

import uuid as uuid_module
from dataclasses import dataclass, field, replace
from typing import List, Tuple

#: Default chunk size (bytes): 256 MB, the paper's default block size (§5).
DEFAULT_CHUNK_BYTES = 256 * 1024 * 1024

#: Default replication factor (§5).
DEFAULT_REPLICATION = 3


def chunk_count(size_bytes: int, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> int:
    """Number of chunks holding ``size_bytes`` (0 for an empty file)."""
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    if chunk_bytes <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk_bytes}")
    return -(-size_bytes // chunk_bytes)


def chunk_ranges(
    size_bytes: int, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> List[Tuple[int, int]]:
    """Byte ranges ``[(start, end), ...]`` of each chunk (end exclusive)."""
    return [
        (start, min(start + chunk_bytes, size_bytes))
        for start in range(0, size_bytes, chunk_bytes)
    ]


@dataclass(frozen=True)
class FileMetadata:
    """Nameserver record for one file.

    The paper's metadata is "at least 67 bytes per file": a UUID, the name,
    size, chunk size and the replica list — which is exactly what is here.
    """

    name: str
    file_id: str
    size_bytes: int
    chunk_bytes: int
    replicas: Tuple[str, ...]

    @property
    def primary(self) -> str:
        """The primary replica host (orders appends)."""
        return self.replicas[0]

    @property
    def num_chunks(self) -> int:
        return chunk_count(self.size_bytes, self.chunk_bytes)

    def last_chunk_index(self) -> int:
        """Index of the (mutable) last chunk; -1 for an empty file."""
        return self.num_chunks - 1

    def with_size(self, size_bytes: int) -> "FileMetadata":
        """A copy with an updated size (after an append)."""
        return replace(self, size_bytes=size_bytes)

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "file_id": self.file_id,
            "size_bytes": self.size_bytes,
            "chunk_bytes": self.chunk_bytes,
            "replicas": list(self.replicas),
        }

    @classmethod
    def from_json_dict(cls, obj: dict) -> "FileMetadata":
        return cls(
            name=obj["name"],
            file_id=obj["file_id"],
            size_bytes=obj["size_bytes"],
            chunk_bytes=obj["chunk_bytes"],
            replicas=tuple(obj["replicas"]),
        )


def new_file_id() -> str:
    """Fresh UUID for a new file (the dataserver directory name, §3.3.2)."""
    return str(uuid_module.uuid4())

"""Namespace sharding for the partitioned nameserver.

The metadata half of the sharded control plane: the file namespace is
split into ``P`` partitions by consistent hashing, each partition served
by its own nameserver (a single instance, or a paxos-replicated group
through :mod:`repro.consensus`).  Three pieces cooperate:

:class:`ShardMap`
    The authoritative epoch-stamped routing table: partition index →
    replica endpoints.  Name→partition routing is a pure function of the
    name and the partition *count* (a fixed virtual-node ring), so the
    partition of a file never depends on the epoch — epoch bumps
    re-describe *where* partitions are served, never *which* partition a
    name belongs to.

:class:`PartitionGuard`
    Server-side enforcement, wrapped around each partition's nameserver:
    name-bearing RPCs whose name hashes elsewhere are rejected with
    :class:`~repro.fs.errors.WrongPartitionError` carrying the guard's
    current epoch, instead of silently creating orphan metadata.  Every
    guard also answers ``get_shard_map`` so a client can bootstrap or
    refresh from any partition it can still reach.

:class:`ShardRouter`
    The client's cached view: resolves a name to its partition's
    endpoints without any RPC on the happy path, and is invalidated by
    installing a higher-epoch map (the client refetches when a guard's
    ``WrongPartitionError`` advertises a newer epoch).

The default single-partition configuration routes every name to
partition 0 and is never consulted on the monolithic path, keeping the
fig4/fig8 fingerprints bit-identical.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Dict, List, Tuple

from repro.fs.errors import InvalidRequestError, WrongPartitionError
from repro.sim import instrument

#: Virtual nodes per partition on the hash ring.  More points smooth the
#: name distribution across partitions; the value is part of the routing
#: function and must never change once maps are in the wild.
VNODES_PER_PARTITION = 32

#: Nameserver RPCs whose first argument is the file name the request is
#: about (``move``'s is its source name).  These are the calls a
#: :class:`PartitionGuard` routes; everything else passes through.
NAME_ROUTED_METHODS = frozenset(
    {
        "create",
        "lookup",
        "exists",
        "delete",
        "record_append",
        "update_replicas",
        "move",
    }
)


def _hash_point(key: str) -> int:
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@lru_cache(maxsize=None)
def _ring(num_partitions: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """The sorted virtual-node ring for a partition count.

    Returns parallel tuples ``(points, owners)``; cached because every
    map with the same partition count shares one ring.
    """
    nodes: List[Tuple[int, int]] = []
    for partition in range(num_partitions):
        for vnode in range(VNODES_PER_PARTITION):
            nodes.append((_hash_point(f"shard:{partition}:{vnode}"), partition))
    nodes.sort()
    return (
        tuple(point for point, _ in nodes),
        tuple(owner for _, owner in nodes),
    )


def partition_for(name: str, num_partitions: int) -> int:
    """The partition owning ``name`` — pure function of (name, count)."""
    if num_partitions <= 0:
        raise ValueError(f"need at least one partition, got {num_partitions}")
    if num_partitions == 1:
        return 0
    points, owners = _ring(num_partitions)
    index = bisect_left(points, _hash_point(f"name:{name}"))
    if index == len(points):
        index = 0
    return owners[index]


@dataclass(frozen=True)
class ShardMap:
    """Epoch-stamped partition → replica-endpoints table."""

    epoch: int
    partitions: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {self.epoch}")
        if not self.partitions:
            raise ValueError("a shard map needs at least one partition")
        for index, endpoints in enumerate(self.partitions):
            if not endpoints:
                raise ValueError(f"partition {index} has no endpoints")

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def partition_for(self, name: str) -> int:
        return partition_for(name, self.num_partitions)

    def endpoints_for(self, name: str) -> Tuple[str, ...]:
        return self.partitions[self.partition_for(name)]

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "partitions": [list(endpoints) for endpoints in self.partitions],
        }

    @staticmethod
    def from_json_dict(data: Dict[str, Any]) -> "ShardMap":
        return ShardMap(
            epoch=int(data["epoch"]),
            partitions=tuple(
                tuple(str(e) for e in endpoints)
                for endpoints in data["partitions"]
            ),
        )


class ShardRouter:
    """Client-side cached shard map with monotonic-epoch invalidation."""

    def __init__(self, shard_map: ShardMap) -> None:
        self._map = shard_map
        self.refreshes = 0

    @property
    def shard_map(self) -> ShardMap:
        return self._map

    @property
    def epoch(self) -> int:
        return self._map.epoch

    def endpoints_for(self, name: str) -> List[str]:
        return list(self._map.endpoints_for(name))

    def install(self, shard_map: ShardMap) -> bool:
        """Adopt a refreshed map; stale (≤ cached epoch) maps are ignored.

        Returns whether the map was adopted.
        """
        if shard_map.epoch <= self._map.epoch:
            return False
        if shard_map.num_partitions != self._map.num_partitions:
            raise ValueError(
                "shard-map epoch bump cannot change the partition count "
                f"({self._map.num_partitions} -> {shard_map.num_partitions})"
            )
        self._map = shard_map
        self.refreshes += 1
        return True


class PartitionGuard:
    """Routing enforcement wrapped around one partition's nameserver.

    Name-routed RPCs are checked against the shard map before reaching
    the inner nameserver; everything else (``install``, ``list_files``,
    ``new_file_id``, lifecycle) delegates untouched, so the guard is a
    drop-in ``"nameserver"`` service handler for the RPC fabric.
    """

    def __init__(self, inner: Any, index: int, shard_map: ShardMap) -> None:
        if not 0 <= index < shard_map.num_partitions:
            raise ValueError(
                f"partition index {index} out of range for "
                f"{shard_map.num_partitions} partitions"
            )
        self._inner = inner
        self.index = index
        self._map = shard_map
        self.misroutes = 0

    @property
    def inner(self) -> Any:
        return self._inner

    @property
    def shard_map(self) -> ShardMap:
        return self._map

    def install_map(self, shard_map: ShardMap) -> None:
        """Adopt a higher-epoch map (partition count is immutable)."""
        if shard_map.epoch <= self._map.epoch:
            raise ValueError(
                f"shard-map epoch must increase "
                f"({self._map.epoch} -> {shard_map.epoch})"
            )
        if shard_map.num_partitions != self._map.num_partitions:
            raise ValueError("epoch bump cannot change the partition count")
        self._map = shard_map

    def get_shard_map(self) -> Dict[str, Any]:
        """RPC: the current map, for client bootstrap/refresh."""
        return self._map.to_json_dict()

    def _check(self, name: str) -> None:
        owner = self._map.partition_for(name)
        if owner != self.index:
            self.misroutes += 1
            tel = instrument.TELEMETRY
            if tel is not None:
                tel.count("ns_partition_misroutes_total")
            raise WrongPartitionError(
                f"file {name!r} belongs to partition {owner}, "
                f"not {self.index} (map epoch {self._map.epoch})",
                epoch=self._map.epoch,
            )

    def __getattr__(self, attr: str) -> Any:
        target = getattr(self._inner, attr)
        if attr not in NAME_ROUTED_METHODS or not callable(target):
            return target
        bound: Callable[..., Any] = target

        def guarded(*args: Any, **kwargs: Any) -> Any:
            self._check(str(args[0]))
            if attr == "move":
                dst = str(args[1])
                if self._map.partition_for(dst) != self.index:
                    # Cross-partition renames would need a distributed
                    # transaction across paxos groups; the sharded
                    # namespace documents them as unsupported.
                    raise InvalidRequestError(
                        f"cross-partition move {args[0]!r} -> {dst!r} "
                        "is not supported"
                    )
            return bound(*args, **kwargs)

        return guarded

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PartitionGuard(index={self.index}, "
            f"epoch={self._map.epoch})"
        )

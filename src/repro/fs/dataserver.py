"""The dataserver (§3.3.2).

Stores file chunks, services reads, and — when it is a file's primary —
orders appends and relays them to the other replica hosts.  Key semantics
from the paper:

* files are append-only; each file is a directory named by its UUID with
  numbered chunk files inside (modelled as an in-memory chunk list, with
  optional real payloads for functional tests);
* only one append is serviced at a time per file (atomic appends);
* reads may run concurrently with an append *unless* they touch the last
  chunk, which the append mutates;
* every read reply carries the file's current size, which is how clients
  discover chunks appended by others despite caching the chunk map.

The dataserver exchanges control messages over the RPC fabric and moves
data through a :class:`DataPlane` (bulk transfers ride the congestion
simulator; the cluster layer provides the concrete implementation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.fs.chunks import FileMetadata
from repro.fs.errors import FileNotFoundFsError, InvalidRequestError
from repro.net.simulator import FlowAborted
from repro.sim import instrument
from repro.sim.engine import EventLoop
from repro.sim.process import Signal


class DataPlane:
    """Interface the dataserver uses to move bulk data between hosts.

    ``transfer`` is a generator (process-style): it completes when the
    last byte has been delivered.  ``flow_id``/``path`` are optional
    pre-arranged routing decisions (a Mayflower read supplies them; writes
    and baseline reads let the data plane pick, e.g. via ECMP).
    """

    def transfer(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        flow_id: Optional[str] = None,
        path=None,
        job_id: Optional[str] = None,
    ) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover


@dataclass
class StoredFile:
    """One file replica on this dataserver."""

    metadata: FileMetadata
    size_bytes: int = 0
    chunks: List[int] = field(default_factory=list)  # per-chunk byte counts
    payload: Optional[bytearray] = None  # real bytes when store_payload
    appending: bool = False
    append_waiters: List[Signal] = field(default_factory=list)


@dataclass(frozen=True)
class ReadReply:
    """Reply to a read RPC: data (when payloads are stored) + current size."""

    file_id: str
    offset: int
    length: int
    file_size: int
    data: Optional[bytes]


class Dataserver:
    """Chunk storage and append coordination for one host."""

    def __init__(
        self,
        host_id: str,
        loop: EventLoop,
        fabric,
        dataplane: DataPlane,
        store_payload: bool = False,
        nameserver_endpoint: Optional[str] = None,
    ):
        self.host_id = host_id
        self._loop = loop
        self._fabric = fabric
        self._dataplane = dataplane
        self.store_payload = store_payload
        self._nameserver = nameserver_endpoint
        self._files: Dict[str, StoredFile] = {}
        self.appends_served = 0
        self.reads_served = 0

    # ------------------------------------------------------------------
    # File lifecycle (control plane)
    # ------------------------------------------------------------------

    def create_file(self, metadata_dict: dict) -> str:
        """Create an empty local replica of a file (idempotent)."""
        metadata = FileMetadata.from_json_dict(metadata_dict)
        if metadata.file_id not in self._files:
            self._files[metadata.file_id] = StoredFile(
                metadata=metadata,
                payload=bytearray() if self.store_payload else None,
            )
        return metadata.file_id

    def delete_file(self, file_id: str) -> bool:
        """Drop the local replica; returns whether it existed."""
        return self._files.pop(file_id, None) is not None

    def has_file(self, file_id: str) -> bool:
        return file_id in self._files

    def rename_file(self, file_id: str, new_name: str) -> bool:
        """Update the local metadata's name after a namespace move."""
        stored = self._stored(file_id)
        from dataclasses import replace

        stored.metadata = replace(stored.metadata, name=new_name)
        return True

    def file_size(self, file_id: str) -> int:
        return self._stored(file_id).size_bytes

    def list_files(self) -> List[dict]:
        """Local metadata of every replica held here (nameserver rebuild).

        Sizes reflect this replica's committed length, which on the primary
        is authoritative.
        """
        result = []
        for stored in self._files.values():
            meta = stored.metadata.with_size(stored.size_bytes)
            result.append(meta.to_json_dict())
        return sorted(result, key=lambda m: m["file_id"])

    # ------------------------------------------------------------------
    # Appends (data plane; primary orders and relays)
    # ------------------------------------------------------------------

    def append(
        self,
        file_id: str,
        size_bytes: int,
        from_host: str,
        data: Optional[bytes] = None,
        job_id: Optional[str] = None,
    ) -> Generator:
        """Primary-side append: receive, commit locally, relay to replicas.

        Appends to the same file are serialized (atomic append); the reply
        is the file's new size after this append commits on every replica.
        """
        stored = self._stored(file_id)
        if size_bytes <= 0:
            raise InvalidRequestError(f"append size must be positive, got {size_bytes}")
        if data is not None and len(data) != size_bytes:
            raise InvalidRequestError("append data length does not match size")
        if stored.metadata.primary != self.host_id:
            raise InvalidRequestError(
                f"append sent to non-primary {self.host_id} "
                f"(primary is {stored.metadata.primary})"
            )

        yield from self._acquire_append_lock(stored)
        try:
            # 1. Pull the data from the writer.
            yield from self._dataplane.transfer(
                from_host, self.host_id, size_bytes, job_id=job_id
            )
            # 2. Commit locally.
            self._commit_append(stored, size_bytes, data)
            # 3. Relay to the secondary replicas (in parallel).
            relays = []
            for replica in stored.metadata.replicas[1:]:
                relays.append(
                    self._spawn_relay(replica, stored, size_bytes, data, job_id)
                )
            for proc in relays:
                yield proc
            # 4. Report the committed size to the nameserver so lookups see
            #    the new length (§3.3.1).
            if self._nameserver is not None:
                yield from self._fabric.invoke(
                    self.host_id,
                    self._nameserver,
                    "nameserver",
                    "record_append",
                    stored.metadata.name,
                    stored.size_bytes,
                )
            self.appends_served += 1
            tel = instrument.TELEMETRY
            if tel is not None:
                tel.instant(self._loop.now, "ds.append", "ds",
                            host=self.host_id, file=stored.metadata.name,
                            size=stored.size_bytes)
                tel.count("ds_appends_served_total")
            return stored.size_bytes
        finally:
            self._release_append_lock(stored)

    def replica_append(
        self,
        file_id: str,
        size_bytes: int,
        from_host: str,
        data: Optional[bytes] = None,
        job_id: Optional[str] = None,
    ) -> Generator:
        """Secondary-side append: receive relayed data and commit."""
        stored = self._stored(file_id)
        yield from self._acquire_append_lock(stored)
        try:
            yield from self._dataplane.transfer(
                from_host, self.host_id, size_bytes, job_id=job_id
            )
            self._commit_append(stored, size_bytes, data)
            return stored.size_bytes
        finally:
            self._release_append_lock(stored)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def serve_read(
        self,
        file_id: str,
        offset: int,
        length: int,
        to_host: str,
        flow_id: Optional[str] = None,
        path=None,
        job_id: Optional[str] = None,
    ) -> Generator:
        """Send ``length`` bytes starting at ``offset`` to ``to_host``.

        Completes when the last byte is delivered.  Reads touching the
        last chunk wait for any in-flight append (§3.3.2).
        """
        stored = self._stored(file_id)
        if offset < 0 or length <= 0:
            raise InvalidRequestError(f"invalid read range {offset}+{length}")
        if self._touches_last_chunk(stored, offset, length):
            yield from self._wait_for_append(stored)
        if offset + length > stored.size_bytes:
            raise InvalidRequestError(
                f"read past end of file: {offset}+{length} > {stored.size_bytes}"
            )
        try:
            yield from self._dataplane.transfer(
                self.host_id, to_host, length, flow_id=flow_id, path=path, job_id=job_id
            )
        except FlowAborted as exc:
            # Attach the delivered payload prefix so a resuming client
            # keeps the bytes that made it across before the failure.
            delivered = min(int(exc.bytes_delivered), length)
            if stored.payload is not None and delivered > 0:
                exc.data = bytes(stored.payload[offset : offset + delivered])
            raise
        self.reads_served += 1
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(self._loop.now, "ds.read", "ds",
                        host=self.host_id, to=to_host, bytes=length)
            tel.count("ds_reads_served_total")
        data = None
        if stored.payload is not None:
            data = bytes(stored.payload[offset : offset + length])
        return ReadReply(
            file_id=file_id,
            offset=offset,
            length=length,
            file_size=stored.size_bytes,
            data=data,
        )

    def push_replica(self, file_id: str, target_host: str) -> Generator:
        """Copy this replica to ``target_host`` (re-replication source side).

        Moves the committed bytes over the data plane, then installs the
        replica remotely.  Used by the replica manager when a dataserver
        dies and the file drops below its replication factor.
        """
        stored = self._stored(file_id)
        yield from self._dataplane.transfer(
            self.host_id, target_host, stored.size_bytes
        )
        payload = bytes(stored.payload) if stored.payload is not None else None
        metadata = stored.metadata.with_size(stored.size_bytes)
        result = yield from self._fabric.invoke(
            self.host_id,
            target_host,
            "dataserver",
            "install_replica",
            metadata.to_json_dict(),
            stored.size_bytes,
            payload,
        )
        return result

    def install_replica(
        self, metadata_dict: dict, size_bytes: int, payload: Optional[bytes] = None
    ) -> str:
        """Receive a pushed replica: create the file and commit its bytes."""
        file_id = self.create_file(metadata_dict)
        stored = self._stored(file_id)
        if stored.size_bytes < size_bytes:
            delta = size_bytes - stored.size_bytes
            data = payload[stored.size_bytes:] if payload is not None else None
            self._commit_append(stored, delta, data)
        return file_id

    def load_preexisting(self, file_id: str, size_bytes: int) -> None:
        """Materialize pre-existing data without network transfers.

        A bootstrap/fixture hook for experiments whose corpus existed
        before the measurement window (e.g. Fig. 8's read workload); it
        commits chunks exactly as a completed append would, but moves no
        bytes over the data plane.
        """
        stored = self._stored(file_id)
        if size_bytes < 0:
            raise InvalidRequestError(f"size must be non-negative, got {size_bytes}")
        if size_bytes > 0:
            self._commit_append(stored, size_bytes, None)

    def stat(self, file_id: str) -> Tuple[int, int]:
        """(size_bytes, num_chunks) of the local replica."""
        stored = self._stored(file_id)
        num_chunks = -(-stored.size_bytes // stored.metadata.chunk_bytes)
        return stored.size_bytes, num_chunks

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _stored(self, file_id: str) -> StoredFile:
        stored = self._files.get(file_id)
        if stored is None:
            raise FileNotFoundFsError(f"no file {file_id!r} on {self.host_id}")
        return stored

    def _commit_append(
        self, stored: StoredFile, size_bytes: int, data: Optional[bytes]
    ) -> None:
        chunk_bytes = stored.metadata.chunk_bytes
        remaining = size_bytes
        while remaining > 0:
            if not stored.chunks or stored.chunks[-1] >= chunk_bytes:
                stored.chunks.append(0)
            room = chunk_bytes - stored.chunks[-1]
            take = min(room, remaining)
            stored.chunks[-1] += take
            remaining -= take
        stored.size_bytes += size_bytes
        if stored.payload is not None:
            stored.payload.extend(data if data is not None else b"\x00" * size_bytes)

    def _touches_last_chunk(self, stored: StoredFile, offset: int, length: int) -> bool:
        if not stored.appending:
            return False
        chunk_bytes = stored.metadata.chunk_bytes
        last_start = max(0, (len(stored.chunks) - 1)) * chunk_bytes
        return offset + length > last_start

    def _wait_for_append(self, stored: StoredFile) -> Generator:
        """Block (without acquiring) until no append is in flight."""
        while stored.appending:
            waiter = Signal(self._loop, name=f"read-wait:{stored.metadata.file_id}")
            stored.append_waiters.append(waiter)
            yield waiter

    def _acquire_append_lock(self, stored: StoredFile) -> Generator:
        while stored.appending:
            waiter = Signal(self._loop, name=f"append-wait:{stored.metadata.file_id}")
            stored.append_waiters.append(waiter)
            yield waiter
        stored.appending = True

    def _release_append_lock(self, stored: StoredFile) -> None:
        stored.appending = False
        waiters, stored.append_waiters = stored.append_waiters, []
        for waiter in waiters:
            waiter.fire()

    def _spawn_relay(
        self,
        replica: str,
        stored: StoredFile,
        size_bytes: int,
        data: Optional[bytes],
        job_id: Optional[str],
    ):
        from repro.sim.process import Process

        def relay():
            result = yield from self._fabric.invoke(
                self.host_id,
                replica,
                "dataserver",
                "replica_append",
                stored.metadata.file_id,
                size_bytes,
                self.host_id,
                data,
                job_id,
            )
            return result

        return Process(
            self._loop, relay(), name=f"relay:{stored.metadata.file_id}->{replica}"
        )

"""The dataserver (§3.3.2).

Stores file chunks, services reads, and — when it is a file's primary —
orders appends and relays them to the other replica hosts.  Key semantics
from the paper:

* files are append-only; each file is a directory named by its UUID with
  numbered chunk files inside (modelled as an in-memory chunk list, with
  optional real payloads for functional tests);
* only one append is serviced at a time per file (atomic appends);
* reads may run concurrently with an append *unless* they touch the last
  chunk, which the append mutates;
* every read reply carries the file's current size, which is how clients
  discover chunks appended by others despite caching the chunk map.

The dataserver exchanges control messages over the RPC fabric and moves
data through a :class:`DataPlane` (bulk transfers ride the congestion
simulator; the cluster layer provides the concrete implementation).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generator,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import repro.analysis.annotations as protocheck
from repro.fs.chunks import FileMetadata
from repro.fs.errors import (
    FileNotFoundFsError,
    InvalidRequestError,
    LeaseExpiredError,
    NotPrimaryError,
    StaleEpochError,
)
from repro.fs.leases import LEASE_SERVICE, HeldLeaseTable, LeaseGrant
from repro.net.simulator import FlowAborted
from repro.sim import instrument
from repro.sim.engine import EventLoop
from repro.sim.process import Signal

if TYPE_CHECKING:
    from repro.core.fanout import RelayNode
    from repro.rpc.fabric import RpcFabric
    from repro.sim.process import Process


class DataPlane:
    """Interface the dataserver uses to move bulk data between hosts.

    ``transfer`` is a generator (process-style): it completes when the
    last byte has been delivered.  ``flow_id``/``path`` are optional
    pre-arranged routing decisions (a Mayflower read supplies them; writes
    and baseline reads let the data plane pick, e.g. via ECMP).
    """

    def transfer(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        flow_id: Optional[str] = None,
        path: Optional[Sequence[str]] = None,
        job_id: Optional[str] = None,
    ) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover


@dataclass(frozen=True)
class LedgerEntry:
    """One committed append in a replica's per-file ledger.

    The ledger is the write pipeline's audit trail: every applied append
    records its id, the offset it landed at, its length and the lease
    epoch under which it was committed.  Exactly-once verification walks
    these — an acked append must appear exactly once, at one offset, on
    every replica.
    """

    append_id: str
    offset: int
    length: int
    epoch: int


@dataclass
class StoredFile:
    """One file replica on this dataserver."""

    metadata: FileMetadata
    size_bytes: int = 0
    chunks: List[int] = field(default_factory=list)  # per-chunk byte counts
    payload: Optional[bytearray] = None  # real bytes when store_payload
    appending: bool = False
    append_waiters: List[Signal] = field(default_factory=list)
    #: Highest lease epoch observed for this file (commits and relays
    #: carrying an older epoch are fenced off).
    epoch: int = 0
    #: Ordered audit trail of applied appends.
    ledger: List[LedgerEntry] = field(default_factory=list)
    #: append_id -> (offset, length) for every locally-applied append —
    #: the idempotence index retried commits and relays dedup against.
    applied_ids: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: append_id -> post-append file size for appends this host (as
    #: primary) fully replicated and recorded; a retried commit of one of
    #: these returns the recorded size without touching anything.
    acked_ids: Dict[str, int] = field(default_factory=dict)
    #: append_id -> (length, data) staged by ``push_data`` awaiting commit.
    staged: Dict[str, Tuple[int, Optional[bytes]]] = field(default_factory=dict)


@dataclass(frozen=True)
class ReadReply:
    """Reply to a read RPC: data (when payloads are stored) + current size."""

    file_id: str
    offset: int
    length: int
    file_size: int
    data: Optional[bytes]


class Dataserver:
    """Chunk storage and append coordination for one host."""

    def __init__(
        self,
        host_id: str,
        loop: EventLoop,
        fabric: "RpcFabric",
        dataplane: DataPlane,
        store_payload: bool = False,
        nameserver_endpoint: Optional[str] = None,
        lease_endpoint: Optional[str] = None,
        nameserver_router: Optional[Callable[[str], str]] = None,
        lease_router: Optional[Callable[[str], str]] = None,
    ) -> None:
        self.host_id = host_id
        self._loop = loop
        self._fabric = fabric
        self._dataplane = dataplane
        self.store_payload = store_payload
        self._nameserver = nameserver_endpoint
        #: Where the lease service lives; ``None`` leaves the write
        #: pipeline un-leased (metadata primaryship is trusted, as in the
        #: legacy single-phase append).
        self._lease_endpoint = lease_endpoint
        #: Partitioned-nameserver routing: map a file *name* to the
        #: endpoint of its owning metadata partition (and that
        #: partition's lease service).  ``None`` — the monolithic
        #: default — uses the scalar endpoints above unchanged.
        self._nameserver_router = nameserver_router
        self._lease_router = lease_router
        self._held_leases = HeldLeaseTable(loop)
        self._files: Dict[str, StoredFile] = {}
        self.appends_served = 0
        self.reads_served = 0
        self.pushes_staged = 0
        self.pipelined_appends_served = 0
        self.appends_deduplicated = 0
        self.catch_ups_served = 0
        self.relays_caught_up = 0
        self.truncations = 0
        self.lease_fencings = 0

    # ------------------------------------------------------------------
    # File lifecycle (control plane)
    # ------------------------------------------------------------------

    def create_file(self, metadata_dict: dict) -> str:
        """Create an empty local replica of a file (idempotent)."""
        metadata = FileMetadata.from_json_dict(metadata_dict)
        if metadata.file_id not in self._files:
            self._files[metadata.file_id] = StoredFile(
                metadata=metadata,
                payload=bytearray() if self.store_payload else None,
            )
        return metadata.file_id

    def delete_file(self, file_id: str) -> bool:
        """Drop the local replica; returns whether it existed."""
        return self._files.pop(file_id, None) is not None

    def has_file(self, file_id: str) -> bool:
        return file_id in self._files

    def rename_file(self, file_id: str, new_name: str) -> bool:
        """Update the local metadata's name after a namespace move."""
        stored = self._stored(file_id)
        from dataclasses import replace

        stored.metadata = replace(stored.metadata, name=new_name)
        return True

    def file_size(self, file_id: str) -> int:
        return self._stored(file_id).size_bytes

    def list_files(self) -> List[dict]:
        """Local metadata of every replica held here (nameserver rebuild).

        Sizes reflect this replica's committed length, which on the primary
        is authoritative.
        """
        result = []
        for stored in self._files.values():
            meta = stored.metadata.with_size(stored.size_bytes)
            meta_dict = meta.to_json_dict()
            meta_dict["epoch"] = stored.epoch
            result.append(meta_dict)
        return sorted(result, key=lambda m: m["file_id"])

    # ------------------------------------------------------------------
    # Appends (data plane; primary orders and relays)
    # ------------------------------------------------------------------

    def append(
        self,
        file_id: str,
        size_bytes: int,
        from_host: str,
        data: Optional[bytes] = None,
        job_id: Optional[str] = None,
        append_id: Optional[str] = None,
    ) -> Generator:
        """Primary-side append: receive, commit locally, relay to replicas.

        Appends to the same file are serialized (atomic append); the reply
        is the file's new size after this append commits on every replica.

        ``append_id`` is the client's idempotence token: a retry of an
        append this primary already applied skips the re-commit (and a
        retry of one it already fully acknowledged returns the recorded
        size immediately), so an append resent after an ``RpcTimeout``
        can never double-commit.
        """
        stored = self._stored(file_id)
        if size_bytes <= 0:
            raise InvalidRequestError(f"append size must be positive, got {size_bytes}")
        if data is not None and len(data) != size_bytes:
            raise InvalidRequestError("append data length does not match size")
        if append_id is not None and append_id in stored.acked_ids:
            self.appends_deduplicated += 1
            self._count("ds_appends_deduplicated_total")
            return stored.acked_ids[append_id]
        if stored.metadata.primary != self.host_id:
            raise NotPrimaryError(
                f"append sent to non-primary {self.host_id} "
                f"(primary is {stored.metadata.primary})"
            )

        yield from self._acquire_append_lock(stored)
        try:
            already = append_id is not None and append_id in stored.applied_ids
            if already:
                self.appends_deduplicated += 1
                self._count("ds_appends_deduplicated_total")
            else:
                # 1. Pull the data from the writer.
                yield from self._dataplane.transfer(
                    from_host, self.host_id, size_bytes, job_id=job_id
                )
                # 2. Commit locally.
                offset = stored.size_bytes
                self._commit_append(stored, size_bytes, data)
                if append_id is not None:
                    entry = LedgerEntry(
                        append_id=append_id, offset=offset,
                        length=size_bytes, epoch=stored.epoch,
                    )
                    stored.ledger.append(entry)
                    stored.applied_ids[append_id] = (offset, size_bytes)
            # 3. Relay to the secondary replicas (in parallel).
            relays = []
            for replica in stored.metadata.replicas[1:]:
                relays.append(
                    self._spawn_relay(
                        replica, stored, size_bytes, data, job_id, append_id
                    )
                )
            for proc in relays:
                yield proc
            # 4. Report the committed size to the nameserver so lookups see
            #    the new length (§3.3.1).
            ns_endpoint = self._ns_endpoint_for(stored.metadata.name)
            if ns_endpoint is not None:
                yield from self._fabric.invoke(
                    self.host_id,
                    ns_endpoint,
                    "nameserver",
                    "record_append",
                    stored.metadata.name,
                    stored.size_bytes,
                )
            if append_id is not None:
                stored.acked_ids[append_id] = stored.size_bytes
            self.appends_served += 1
            tel = instrument.TELEMETRY
            if tel is not None:
                tel.instant(self._loop.now, "ds.append", "ds",
                            host=self.host_id, file=stored.metadata.name,
                            size=stored.size_bytes)
                tel.count("ds_appends_served_total")
            return stored.size_bytes
        finally:
            self._release_append_lock(stored)

    @protocheck.fenced(
        reason="legacy (non-pipelined) relay: the metadata primary is "
        "trusted as ordering authority; epoch fencing for relays lives "
        "on the pipelined relay_append path"
    )
    def replica_append(
        self,
        file_id: str,
        size_bytes: int,
        from_host: str,
        data: Optional[bytes] = None,
        job_id: Optional[str] = None,
        append_id: Optional[str] = None,
    ) -> Generator:
        """Secondary-side append: receive relayed data and commit."""
        stored = self._stored(file_id)
        yield from self._acquire_append_lock(stored)
        try:
            if append_id is not None and append_id in stored.applied_ids:
                self.appends_deduplicated += 1
                self._count("ds_appends_deduplicated_total")
                return stored.size_bytes
            yield from self._dataplane.transfer(
                from_host, self.host_id, size_bytes, job_id=job_id
            )
            offset = stored.size_bytes
            self._commit_append(stored, size_bytes, data)
            if append_id is not None:
                entry = LedgerEntry(
                    append_id=append_id, offset=offset,
                    length=size_bytes, epoch=stored.epoch,
                )
                stored.ledger.append(entry)
                stored.applied_ids[append_id] = (offset, size_bytes)
            return stored.size_bytes
        finally:
            self._release_append_lock(stored)

    @contextmanager
    def _stage_span(
        self, name: str, append_id: Optional[str], **args: object
    ) -> Iterator[None]:
        """Child span for one write-pipeline stage, installed ambiently.

        Unified stage naming (``ds.push_data`` / ``ds.commit_append`` /
        ``ds.relay`` / ``ds.catch_up``), tagged with the append id and
        parented under the rpc span that delivered the stage — so the
        analyze engine can attribute an append's latency to push vs
        commit vs relay hops by name.  Safe inside generator methods:
        the ambient context the block installs is saved/restored per
        process resume, and ``__exit__`` runs in the owning process.
        """
        tel = instrument.TELEMETRY
        if tel is None:
            yield
            return
        span_args = dict(args)
        if append_id is not None:
            span_args["append"] = append_id
        ctx = tel.start_span(
            self._loop.now, name, "ds", track="ds",
            span_id=tel.next_id("ds"), host=self.host_id, **span_args,
        )
        previous = instrument.set_context(ctx)
        try:
            yield
        finally:
            instrument.set_context(previous)
            tel = instrument.TELEMETRY
            if tel is not None:
                tel.finish_span(self._loop.now, ctx, name, "ds", track="ds")

    # ------------------------------------------------------------------
    # Two-phase, lease-guarded write pipeline
    # ------------------------------------------------------------------
    #
    # The pipelined append splits the legacy one-shot ``append`` into
    #
    #   1. ``push_data``   — the writer streams the bytes to the primary,
    #      which *stages* them under the client's append id (no ordering,
    #      no lock, no visibility to readers);
    #   2. ``commit_append`` — the primary validates its lease (fencing),
    #      serializes the append under the per-file lock, stamps the
    #      current lease epoch, fans the commit out over the relay
    #      topology the Flowserver planned, reports the epoch-stamped
    #      size to the nameserver, and only then acknowledges.
    #
    # Secondaries (``relay_append``) fence stale epochs, repair
    # themselves before applying — catching up missed commits from the
    # relay parent (``serve_catch_up``) and truncating diverged tails a
    # fenced-out primary left behind — and forward down chain topologies.
    # Every applied append lands in the replica's :class:`LedgerEntry`
    # list, the audit trail exactly-once verification checks.

    def push_data(
        self,
        file_id: str,
        append_id: str,
        size_bytes: int,
        from_host: str,
        data: Optional[bytes] = None,
        path: Optional[Sequence[str]] = None,
        job_id: Optional[str] = None,
    ) -> Generator:
        """Phase one: stage the writer's bytes under ``append_id``.

        Staging is idempotent and lock-free — the bytes become visible
        only when ``commit_append`` orders them.  A push for an append
        that already committed is a no-op (the retry's commit will dedup).
        """
        stored = self._stored(file_id)
        if size_bytes <= 0:
            raise InvalidRequestError(f"append size must be positive, got {size_bytes}")
        if data is not None and len(data) != size_bytes:
            raise InvalidRequestError("append data length does not match size")
        if append_id in stored.acked_ids or append_id in stored.applied_ids:
            return stored.size_bytes
        with self._stage_span("ds.push_data", append_id,
                              file=stored.metadata.name, bytes=size_bytes):
            yield from self._dataplane.transfer(
                from_host, self.host_id, size_bytes, path=path, job_id=job_id
            )
            stored.staged[append_id] = (
                size_bytes, bytes(data) if data is not None else None
            )
            self.pushes_staged += 1
            self._count("ds_pushes_staged_total")
        return size_bytes

    def commit_append(
        self,
        file_id: str,
        append_id: str,
        from_host: str,
        children: Sequence["RelayNode"] = (),
        job_id: Optional[str] = None,
    ) -> Generator:
        """Phase two: order, stamp, relay, record, acknowledge.

        ``children`` is the relay topology (a tuple of
        :class:`repro.core.fanout.RelayNode`) the Flowserver planned —
        the primary's direct relay targets, each possibly carrying its
        own onward chain.  The append is acknowledged only after every
        replica in the topology applied it and the nameserver accepted
        the epoch-stamped size; a retry of an already-acknowledged
        append returns the recorded size untouched.
        """
        stored = self._stored(file_id)
        if append_id in stored.acked_ids:
            self.appends_deduplicated += 1
            self._count("ds_appends_deduplicated_total")
            return stored.acked_ids[append_id]
        with self._stage_span("ds.commit_append", append_id,
                              file=stored.metadata.name):
            epoch = yield from self._ensure_lease(stored)
            yield from self._acquire_append_lock(stored)
            try:
                if append_id in stored.applied_ids:
                    # Applied by an earlier (timed-out or relay-failed)
                    # attempt — or relayed to us before we were promoted.
                    offset, length = stored.applied_ids[append_id]
                    self.appends_deduplicated += 1
                    self._count("ds_appends_deduplicated_total")
                else:
                    staged = stored.staged.get(append_id)
                    if staged is None:
                        raise InvalidRequestError(
                            f"commit of unstaged append {append_id!r} "
                            f"(push_data must precede commit_append)"
                        )
                    length, data = staged
                    offset = stored.size_bytes
                    self._apply_entry(
                        stored,
                        LedgerEntry(
                            append_id=append_id, offset=offset,
                            length=length, epoch=epoch,
                        ),
                        data,
                    )
                relay_data = self._entry_bytes(stored, append_id, offset, length)
                entry = LedgerEntry(
                    append_id=append_id, offset=offset, length=length, epoch=epoch
                )
                yield from self._relay_to_children(
                    stored, entry, relay_data, children, job_id
                )
                ns_endpoint = self._ns_endpoint_for(stored.metadata.name)
                if ns_endpoint is not None:
                    try:
                        yield from self._fabric.invoke(
                            self.host_id,
                            ns_endpoint,
                            "nameserver",
                            "record_append",
                            stored.metadata.name,
                            stored.size_bytes,
                            epoch,
                            self.host_id,
                        )
                    except Exception as err:
                        remote = getattr(err, "remote_error", None)
                        if isinstance(remote, StaleEpochError):
                            # Fenced at the nameserver: our authority lapsed
                            # between the lease check and the record.  The
                            # append is NOT acknowledged; the current primary
                            # repairs our tail on its next relay.
                            self.lease_fencings += 1
                            self._count("ds_lease_fencings_total")
                            raise remote
                        raise
                new_size = stored.size_bytes
                stored.acked_ids[append_id] = new_size
                stored.staged.pop(append_id, None)
                self.pipelined_appends_served += 1
                self.appends_served += 1
                tel = instrument.TELEMETRY
                if tel is not None:
                    tel.instant(self._loop.now, "ds.commit_append", "ds",
                                host=self.host_id, file=stored.metadata.name,
                                append=append_id, epoch=epoch, size=new_size)
                    tel.count("ds_pipelined_appends_total")
                return new_size
            finally:
                self._release_append_lock(stored)

    def relay_append(
        self,
        file_id: str,
        append_id: str,
        size_bytes: int,
        from_host: str,
        data: Optional[bytes],
        expected_offset: int,
        epoch: int,
        path: Optional[Sequence[str]] = None,
        children: Sequence["RelayNode"] = (),
        job_id: Optional[str] = None,
    ) -> Generator:
        """Secondary-side pipelined commit: fence, repair, apply, forward.

        ``expected_offset`` is where the parent committed this append.
        A replica that is *behind* (missed earlier commits, e.g. a relay
        that failed mid-storm) first catches the gap up from the parent;
        one that is *ahead* carries a diverged tail written by a since-
        fenced primary and truncates it — the carried epoch, already
        validated against this replica's highest-seen epoch, is the
        authority for that repair.
        """
        stored = self._stored(file_id)
        with self._stage_span("ds.relay", append_id,
                              file=stored.metadata.name, epoch=epoch,
                              offset=expected_offset):
            if epoch < stored.epoch:
                self.lease_fencings += 1
                self._count("ds_lease_fencings_total")
                raise StaleEpochError(
                    f"relay of {append_id!r} at epoch {epoch} rejected by "
                    f"{self.host_id} (local epoch {stored.epoch})"
                )
            yield from self._acquire_append_lock(stored)
            try:
                stored.epoch = max(stored.epoch, epoch)
                if append_id in stored.applied_ids:
                    self.appends_deduplicated += 1
                    self._count("ds_appends_deduplicated_total")
                else:
                    if stored.size_bytes > expected_offset:
                        self._truncate(stored, expected_offset)
                    if stored.size_bytes < expected_offset:
                        yield from self._catch_up(
                            stored, from_host, expected_offset, job_id
                        )
                    if stored.size_bytes != expected_offset:
                        raise InvalidRequestError(
                            f"replica {self.host_id} failed to converge to "
                            f"offset {expected_offset} for {append_id!r} "
                            f"(at {stored.size_bytes})"
                        )
                    yield from self._dataplane.transfer(
                        from_host, self.host_id, size_bytes, path=path,
                        job_id=job_id,
                    )
                    self._apply_entry(
                        stored,
                        LedgerEntry(
                            append_id=append_id, offset=expected_offset,
                            length=size_bytes, epoch=epoch,
                        ),
                        data,
                    )
                # Forward down the chain even when we deduped: our children
                # may have missed the commit we already have.
                entry = LedgerEntry(
                    append_id=append_id, offset=expected_offset,
                    length=size_bytes, epoch=epoch,
                )
                relay_data = self._entry_bytes(
                    stored, append_id, expected_offset, size_bytes
                )
                yield from self._relay_to_children(
                    stored, entry, relay_data, children, job_id
                )
                return stored.size_bytes
            finally:
                self._release_append_lock(stored)

    def serve_catch_up(
        self,
        file_id: str,
        offset: int,
        upto: int,
        to_host: str,
        job_id: Optional[str] = None,
    ) -> Generator:
        """Stream the committed range ``[offset, upto)`` plus its ledger.

        The repair source side: a behind replica pulls the commits it
        missed before applying a new one.  Only reads committed state —
        no locks taken, so a primary mid-commit can serve catch-ups for
        the offsets below the append it is relaying.
        """
        stored = self._stored(file_id)
        upto = min(upto, stored.size_bytes)
        if offset < 0 or offset > upto:
            raise InvalidRequestError(
                f"invalid catch-up range [{offset}, {upto}) of "
                f"{stored.size_bytes}-byte replica"
            )
        entries = [e for e in stored.ledger if offset <= e.offset < upto]
        length = upto - offset
        if length > 0:
            yield from self._dataplane.transfer(
                self.host_id, to_host, length, job_id=job_id
            )
        data = (
            bytes(stored.payload[offset:upto])
            if stored.payload is not None
            else None
        )
        self.catch_ups_served += 1
        self._count("ds_catch_ups_served_total")
        return {"offset": offset, "upto": upto, "entries": entries,
                "data": data, "epoch": stored.epoch}

    def append_ledger(self, file_id: str) -> List[LedgerEntry]:
        """This replica's ordered append ledger (verification RPC)."""
        return list(self._stored(file_id).ledger)

    @protocheck.fenced(
        reason="replica-set install is driven by the nameserver-side "
        "replica manager, the membership authority; there is no lease "
        "to check because membership changes are what move leases"
    )
    def update_replica_set(self, file_id: str, replicas: Sequence[str]) -> bool:
        """Refresh local metadata after the replica manager rewrote it.

        Keeps the dataserver's notion of the replica set (and thus its
        metadata-primaryship fallback and legacy relay targets) in sync
        with the nameserver after failover promotion or re-replication.
        """
        stored = self._files.get(file_id)
        if stored is None:
            return False
        from dataclasses import replace

        stored.metadata = replace(stored.metadata, replicas=tuple(replicas))
        return True

    def held_lease(self, file_id: str) -> Optional[LeaseGrant]:
        """The live locally-cached lease for a file, if any (introspection)."""
        return self._held_leases.valid(file_id)

    def revoke_leases(self) -> int:
        """Drop every cached lease grant (revocation fault delivery).

        The next commit on each file re-acquires from the manager and
        observes the revocation's epoch bump.  Returns the number of
        cached grants dropped.
        """
        return self._held_leases.revoke_all()

    def _ns_endpoint_for(self, name: str) -> Optional[str]:
        """The nameserver endpoint owning ``name``'s metadata shard."""
        if self._nameserver_router is not None:
            return self._nameserver_router(name)
        return self._nameserver

    def _lease_endpoint_for(self, name: str) -> Optional[str]:
        """The lease service co-located with ``name``'s metadata shard."""
        if self._lease_router is not None:
            return self._lease_router(name)
        return self._lease_endpoint

    def _ensure_lease(self, stored: StoredFile) -> Generator:
        """Validate this host's authority to order appends; returns epoch.

        With leasing armed, a locally-valid grant is the fast path;
        otherwise the manager is asked — which either refreshes the grant
        (we still hold the lease, or it lapsed with no other claimant)
        or fences us out with :class:`LeaseExpiredError`.  Without
        leasing, metadata primaryship is the (unfenced) authority.
        """
        file_id = stored.metadata.file_id
        lease_endpoint = self._lease_endpoint_for(stored.metadata.name)
        if lease_endpoint is None:
            if stored.metadata.primary != self.host_id:
                raise NotPrimaryError(
                    f"commit sent to non-primary {self.host_id} "
                    f"(primary is {stored.metadata.primary})"
                )
            return stored.epoch
        if self.host_id not in stored.metadata.replicas:
            raise NotPrimaryError(
                f"{self.host_id} is no longer a replica of "
                f"{stored.metadata.name!r}"
            )
        grant = self._held_leases.valid(file_id)
        if grant is None:
            try:
                grant_dict = yield from self._fabric.invoke(
                    self.host_id,
                    lease_endpoint,
                    LEASE_SERVICE,
                    "acquire",
                    file_id,
                    self.host_id,
                )
            except Exception as err:
                remote = getattr(err, "remote_error", None)
                if isinstance(remote, LeaseExpiredError):
                    self.lease_fencings += 1
                    self._count("ds_lease_fencings_total")
                    self._held_leases.drop(file_id)
                    raise remote
                raise
            grant = LeaseGrant.from_json_dict(grant_dict)
            self._held_leases.install(grant)
        stored.epoch = max(stored.epoch, grant.epoch)
        return grant.epoch

    def _apply_entry(
        self, stored: StoredFile, entry: LedgerEntry, data: Optional[bytes]
    ) -> None:
        if entry.offset != stored.size_bytes:
            raise InvalidRequestError(
                f"append {entry.append_id!r} applies at {entry.offset}, "
                f"replica is at {stored.size_bytes}"
            )
        self._commit_append(stored, entry.length, data)
        stored.ledger.append(entry)
        stored.applied_ids[entry.append_id] = (entry.offset, entry.length)

    def _entry_bytes(
        self, stored: StoredFile, append_id: str, offset: int, length: int
    ) -> Optional[bytes]:
        """The payload bytes of one applied append (for relays/retries)."""
        staged = stored.staged.get(append_id)
        if staged is not None and staged[1] is not None:
            return staged[1]
        if stored.payload is not None:
            return bytes(stored.payload[offset : offset + length])
        return None

    def _truncate(self, stored: StoredFile, new_size: int) -> None:
        """Cut a diverged tail back to ``new_size``, purging its ledger.

        Purging ``applied_ids`` alongside the entries is what keeps a
        re-relayed append (whose offset changed after an interleaved
        commit) from being wrongly deduplicated against its dead first
        incarnation.
        """
        if new_size >= stored.size_bytes:
            return
        if any(e.offset < new_size < e.offset + e.length for e in stored.ledger):
            raise InvalidRequestError(
                f"truncation to {new_size} would split a ledger entry"
            )
        removed = [e for e in stored.ledger if e.offset >= new_size]
        for entry in removed:
            stored.applied_ids.pop(entry.append_id, None)
            stored.acked_ids.pop(entry.append_id, None)
        stored.ledger = [e for e in stored.ledger if e.offset < new_size]
        chunk_bytes = stored.metadata.chunk_bytes
        chunks: List[int] = []
        remaining = new_size
        while remaining > 0:
            take = min(chunk_bytes, remaining)
            chunks.append(take)
            remaining -= take
        stored.chunks = chunks
        stored.size_bytes = new_size
        if stored.payload is not None:
            del stored.payload[new_size:]
        self.truncations += 1
        self._count("ds_truncations_total")
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(self._loop.now, "ds.truncate", "ds",
                        host=self.host_id, file=stored.metadata.name,
                        size=new_size, purged=len(removed))

    def _catch_up(
        self,
        stored: StoredFile,
        source: str,
        upto: int,
        job_id: Optional[str],
    ) -> Generator:
        """Pull and apply the commits in ``[size, upto)`` from ``source``."""
        with self._stage_span("ds.catch_up", None, file=stored.metadata.name,
                              source=source, upto=upto):
            reply = yield from self._fabric.invoke(
                self.host_id,
                source,
                "dataserver",
                "serve_catch_up",
                stored.metadata.file_id,
                stored.size_bytes,
                upto,
                self.host_id,
                job_id,
            )
            base = reply["offset"]
            blob = reply["data"]
            for entry in reply["entries"]:
                if entry.append_id in stored.applied_ids:
                    continue
                chunk = (
                    blob[entry.offset - base : entry.offset - base + entry.length]
                    if blob is not None
                    else None
                )
                self._apply_entry(stored, entry, chunk)
            stored.epoch = max(stored.epoch, reply["epoch"])
            self.relays_caught_up += 1
            self._count("ds_relays_caught_up_total")

    def _relay_to_children(
        self,
        stored: StoredFile,
        entry: LedgerEntry,
        data: Optional[bytes],
        children: Sequence["RelayNode"],
        job_id: Optional[str],
    ) -> Generator:
        """Fan one commit out to the planned relay children, in parallel."""
        if not children:
            return
        procs = [
            self._spawn_pipeline_relay(stored, entry, data, child, job_id)
            for child in children
        ]
        for proc in procs:
            yield proc

    def _spawn_pipeline_relay(
        self,
        stored: StoredFile,
        entry: LedgerEntry,
        data: Optional[bytes],
        child: "RelayNode",
        job_id: Optional[str],
    ) -> "Process":
        from repro.sim.process import Process

        def relay() -> Generator:
            result = yield from self._fabric.invoke(
                self.host_id,
                child.host,
                "dataserver",
                "relay_append",
                stored.metadata.file_id,
                entry.append_id,
                entry.length,
                self.host_id,
                data,
                entry.offset,
                entry.epoch,
                child.path,
                tuple(child.children),
                job_id,
            )
            return result

        return Process(
            self._loop,
            relay(),
            name=f"pipe-relay:{stored.metadata.file_id}->{child.host}",
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def serve_read(
        self,
        file_id: str,
        offset: int,
        length: int,
        to_host: str,
        flow_id: Optional[str] = None,
        path: Optional[Sequence[str]] = None,
        job_id: Optional[str] = None,
    ) -> Generator:
        """Send ``length`` bytes starting at ``offset`` to ``to_host``.

        Completes when the last byte is delivered.  Reads touching the
        last chunk wait for any in-flight append (§3.3.2).
        """
        stored = self._stored(file_id)
        if offset < 0 or length <= 0:
            raise InvalidRequestError(f"invalid read range {offset}+{length}")
        if self._touches_last_chunk(stored, offset, length):
            yield from self._wait_for_append(stored)
        if offset + length > stored.size_bytes:
            raise InvalidRequestError(
                f"read past end of file: {offset}+{length} > {stored.size_bytes}"
            )
        try:
            yield from self._dataplane.transfer(
                self.host_id, to_host, length, flow_id=flow_id, path=path, job_id=job_id
            )
        except FlowAborted as exc:
            # Attach the delivered payload prefix so a resuming client
            # keeps the bytes that made it across before the failure.
            delivered = min(int(exc.bytes_delivered), length)
            if stored.payload is not None and delivered > 0:
                exc.data = bytes(stored.payload[offset : offset + delivered])
            raise
        self.reads_served += 1
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(self._loop.now, "ds.read", "ds",
                        host=self.host_id, to=to_host, bytes=length)
            tel.count("ds_reads_served_total")
        data = None
        if stored.payload is not None:
            data = bytes(stored.payload[offset : offset + length])
        return ReadReply(
            file_id=file_id,
            offset=offset,
            length=length,
            file_size=stored.size_bytes,
            data=data,
        )

    def push_replica(self, file_id: str, target_host: str) -> Generator:
        """Copy this replica to ``target_host`` (re-replication source side).

        Moves the committed bytes over the data plane, then installs the
        replica remotely.  Used by the replica manager when a dataserver
        dies and the file drops below its replication factor.
        """
        stored = self._stored(file_id)
        yield from self._dataplane.transfer(
            self.host_id, target_host, stored.size_bytes
        )
        payload = bytes(stored.payload) if stored.payload is not None else None
        metadata = stored.metadata.with_size(stored.size_bytes)
        result = yield from self._fabric.invoke(
            self.host_id,
            target_host,
            "dataserver",
            "install_replica",
            metadata.to_json_dict(),
            stored.size_bytes,
            payload,
            list(stored.ledger),
            stored.epoch,
        )
        return result

    @protocheck.fenced(
        reason="replica installation is initiated by push_replica after "
        "a membership decision; the adopted ledger carries the source's "
        "epoch, and a stale source is caught by the epoch-preferring "
        "nameserver rebuild, not by a lease check here"
    )
    def install_replica(
        self,
        metadata_dict: dict,
        size_bytes: int,
        payload: Optional[bytes] = None,
        ledger: Optional[List[LedgerEntry]] = None,
        epoch: int = 0,
    ) -> str:
        """Receive a pushed replica: create the file and commit its bytes.

        When the source shipped its append ledger the new replica adopts
        it (with the source's epoch), so exactly-once verification and
        dedup survive re-replication.
        """
        file_id = self.create_file(metadata_dict)
        stored = self._stored(file_id)
        if stored.size_bytes < size_bytes:
            delta = size_bytes - stored.size_bytes
            data = payload[stored.size_bytes:] if payload is not None else None
            self._commit_append(stored, delta, data)
        if ledger is not None:
            for entry in ledger:
                if entry.append_id not in stored.applied_ids:
                    stored.ledger.append(entry)
                    stored.applied_ids[entry.append_id] = (
                        entry.offset, entry.length,
                    )
            stored.ledger.sort(key=lambda e: e.offset)
        stored.epoch = max(stored.epoch, epoch)
        return file_id

    @protocheck.exempt(
        reason="bootstrap fixture hook: materializes a corpus that "
        "predates the measurement window, outside the append protocol"
    )
    def load_preexisting(self, file_id: str, size_bytes: int) -> None:
        """Materialize pre-existing data without network transfers.

        A bootstrap/fixture hook for experiments whose corpus existed
        before the measurement window (e.g. Fig. 8's read workload); it
        commits chunks exactly as a completed append would, but moves no
        bytes over the data plane.
        """
        stored = self._stored(file_id)
        if size_bytes < 0:
            raise InvalidRequestError(f"size must be non-negative, got {size_bytes}")
        if size_bytes > 0:
            self._commit_append(stored, size_bytes, None)

    def stat(self, file_id: str) -> Tuple[int, int]:
        """(size_bytes, num_chunks) of the local replica."""
        stored = self._stored(file_id)
        num_chunks = -(-stored.size_bytes // stored.metadata.chunk_bytes)
        return stored.size_bytes, num_chunks

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _stored(self, file_id: str) -> StoredFile:
        stored = self._files.get(file_id)
        if stored is None:
            raise FileNotFoundFsError(f"no file {file_id!r} on {self.host_id}")
        return stored

    def _commit_append(
        self, stored: StoredFile, size_bytes: int, data: Optional[bytes]
    ) -> None:
        chunk_bytes = stored.metadata.chunk_bytes
        remaining = size_bytes
        while remaining > 0:
            if not stored.chunks or stored.chunks[-1] >= chunk_bytes:
                stored.chunks.append(0)
            room = chunk_bytes - stored.chunks[-1]
            take = min(room, remaining)
            stored.chunks[-1] += take
            remaining -= take
        stored.size_bytes += size_bytes
        if stored.payload is not None:
            stored.payload.extend(data if data is not None else b"\x00" * size_bytes)

    def _touches_last_chunk(self, stored: StoredFile, offset: int, length: int) -> bool:
        if not stored.appending:
            return False
        chunk_bytes = stored.metadata.chunk_bytes
        last_start = max(0, (len(stored.chunks) - 1)) * chunk_bytes
        return offset + length > last_start

    def _wait_for_append(self, stored: StoredFile) -> Generator:
        """Block (without acquiring) until no append is in flight."""
        while stored.appending:
            waiter = Signal(self._loop, name=f"read-wait:{stored.metadata.file_id}")
            stored.append_waiters.append(waiter)
            yield waiter

    def _acquire_append_lock(self, stored: StoredFile) -> Generator:
        while stored.appending:
            waiter = Signal(self._loop, name=f"append-wait:{stored.metadata.file_id}")
            stored.append_waiters.append(waiter)
            yield waiter
        stored.appending = True

    def _release_append_lock(self, stored: StoredFile) -> None:
        stored.appending = False
        waiters, stored.append_waiters = stored.append_waiters, []
        for waiter in waiters:
            waiter.fire()

    def _spawn_relay(
        self,
        replica: str,
        stored: StoredFile,
        size_bytes: int,
        data: Optional[bytes],
        job_id: Optional[str],
        append_id: Optional[str] = None,
    ) -> "Process":
        from repro.sim.process import Process

        def relay() -> Generator:
            result = yield from self._fabric.invoke(
                self.host_id,
                replica,
                "dataserver",
                "replica_append",
                stored.metadata.file_id,
                size_bytes,
                self.host_id,
                data,
                job_id,
                append_id,
            )
            return result

        return Process(
            self._loop, relay(), name=f"relay:{stored.metadata.file_id}->{replica}"
        )

    def _count(self, name: str, amount: float = 1.0) -> None:
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.count(name, amount)

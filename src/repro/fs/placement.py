"""Replica placement policies.

Placement is decided by the nameserver at file creation using static
fault-domain constraints (§3.3): replicas avoid sharing a rack and at
least one lives in a different pod.

Two concrete policies:

* :class:`PaperEvalPlacement` — the evaluation's traffic matrix (§6.1):
  primary on a uniform-random server, second replica in the *same pod but
  a different rack*, third replica in a *different pod*.
* :class:`HdfsRackAwarePlacement` — the HDFS-style default described in
  §5: two replicas in the same rack, further replicas in other randomly
  selected racks.
"""

from __future__ import annotations

from random import Random
from typing import List, Optional, Sequence

from repro.fs.errors import InvalidRequestError
from repro.net.topology import Topology


class PlacementPolicy:
    """Interface: choose replica hosts for a new file.

    ``writer`` (when known) is the host creating the file; congestion-
    aware policies use it to score the write path, static policies
    ignore it.
    """

    def place(self, replication: int, writer: Optional[str] = None) -> List[str]:
        """Return ``replication`` distinct host ids; index 0 is the primary."""
        raise NotImplementedError


def _choice(rng: Random, items: Sequence[str]) -> str:
    if not items:
        raise InvalidRequestError("no eligible host for replica placement")
    return items[rng.randrange(len(items))]


class PaperEvalPlacement(PlacementPolicy):
    """§6.1 placement: primary uniform; 2nd same-pod/other-rack; 3rd other-pod.

    Replication factors beyond 3 place extra replicas in randomly selected
    racks not already used (mirroring "any further replicas are placed in
    other randomly selected racks").
    """

    def __init__(self, topology: Topology, rng: Random) -> None:
        self._topo = topology
        self._rng = rng
        self._hosts = sorted(topology.hosts)

    def place(self, replication: int, writer: Optional[str] = None) -> List[str]:
        if replication < 1:
            raise InvalidRequestError(f"replication must be >= 1, got {replication}")
        primary = _choice(self._rng, self._hosts)
        chosen = [primary]
        if replication == 1:
            return chosen
        primary_host = self._topo.hosts[primary]

        same_pod_other_rack = sorted(
            h.host_id
            for h in self._topo.hosts.values()
            if h.pod == primary_host.pod and h.rack != primary_host.rack
        )
        if same_pod_other_rack:
            chosen.append(_choice(self._rng, same_pod_other_rack))
        if replication == 2:
            return chosen[:2]

        other_pod = sorted(
            h.host_id
            for h in self._topo.hosts.values()
            if h.pod != primary_host.pod
        )
        if other_pod:
            chosen.append(_choice(self._rng, other_pod))

        while len(chosen) < replication:
            used_racks = {self._topo.hosts[c].rack for c in chosen}
            remaining = sorted(
                h.host_id
                for h in self._topo.hosts.values()
                if h.rack not in used_racks and h.host_id not in chosen
            )
            if not remaining:
                remaining = sorted(set(self._hosts) - set(chosen))
            if not remaining:
                raise InvalidRequestError(
                    f"cannot place {replication} replicas on {len(self._hosts)} hosts"
                )
            chosen.append(_choice(self._rng, remaining))
        return chosen[:replication]


class HdfsRackAwarePlacement(PlacementPolicy):
    """§5 placement: two replicas share the primary's rack, the rest spread."""

    def __init__(self, topology: Topology, rng: Random) -> None:
        self._topo = topology
        self._rng = rng
        self._hosts = sorted(topology.hosts)

    def place(self, replication: int, writer: Optional[str] = None) -> List[str]:
        if replication < 1:
            raise InvalidRequestError(f"replication must be >= 1, got {replication}")
        primary = _choice(self._rng, self._hosts)
        chosen = [primary]
        if replication == 1:
            return chosen
        primary_host = self._topo.hosts[primary]

        same_rack = sorted(
            h.host_id
            for h in self._topo.hosts.values()
            if h.rack == primary_host.rack and h.host_id != primary
        )
        if same_rack:
            chosen.append(_choice(self._rng, same_rack))

        while len(chosen) < replication:
            used_racks = {self._topo.hosts[c].rack for c in chosen[1:]} | {
                primary_host.rack
            }
            remaining = sorted(
                h.host_id
                for h in self._topo.hosts.values()
                if h.rack not in used_racks and h.host_id not in chosen
            )
            if not remaining:
                remaining = sorted(set(self._hosts) - set(chosen))
            if not remaining:
                raise InvalidRequestError(
                    f"cannot place {replication} replicas on {len(self._hosts)} hosts"
                )
            chosen.append(_choice(self._rng, remaining))
        return chosen[:replication]


def validate_fault_domains(topology: Topology, replicas: Sequence[str]) -> List[str]:
    """Check §3.1's constraints; returns a list of violations (empty = ok).

    Constraints checked (for replication >= 3 on multi-pod topologies):
    replicas are distinct hosts, no two share a rack (paper-eval policy),
    and at least one replica lives in a different pod.
    """
    problems = []
    if len(set(replicas)) != len(replicas):
        problems.append("duplicate replica hosts")
    pods = {topology.hosts[r].pod for r in replicas}
    if len(replicas) >= 3 and len(topology.pods()) > 1 and len(pods) < 2:
        problems.append("all replicas in one pod")
    return problems

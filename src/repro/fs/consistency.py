"""Consistency modes (§3.4).

* ``SEQUENTIAL`` (default) — appends are ordered by the file's primary
  replica host; reads may go to *any* replica, so a reader can briefly
  miss the newest appended tail.
* ``STRONG`` — reads of the **last chunk** must be served by the primary
  (which has ordered every append), while all other chunks are immutable
  under append-only semantics and may still be served by any replica.
  This is Mayflower's key consistency optimization: for multi-gigabyte
  files, the vast majority of chunks keep full replica-selection freedom.
"""

from __future__ import annotations

import enum
from typing import List, Sequence, Tuple

from repro.fs.chunks import FileMetadata


class ConsistencyMode(enum.Enum):
    SEQUENTIAL = "sequential"
    STRONG = "strong"


def replica_candidates_for_range(
    metadata: FileMetadata,
    offset: int,
    length: int,
    mode: ConsistencyMode,
) -> List[Tuple[int, int, Sequence[str]]]:
    """Split a read range into sub-ranges with their eligible replicas.

    Returns ``[(offset, length, replicas), ...]``.  Under ``SEQUENTIAL``
    (or when the range avoids the last chunk) this is one sub-range with
    every replica eligible.  Under ``STRONG``, the portion falling in the
    last chunk is split off and pinned to the primary.
    """
    if offset < 0 or length <= 0:
        raise ValueError(f"invalid read range offset={offset} length={length}")
    end = offset + length
    all_replicas = list(metadata.replicas)
    if mode is ConsistencyMode.SEQUENTIAL or metadata.num_chunks == 0:
        return [(offset, length, all_replicas)]

    last_chunk_start = metadata.last_chunk_index() * metadata.chunk_bytes
    if end <= last_chunk_start:
        # Entirely within immutable chunks.
        return [(offset, length, all_replicas)]
    if offset >= last_chunk_start:
        # Entirely within the mutable last chunk -> primary only.
        return [(offset, length, [metadata.primary])]
    # Straddles the boundary: immutable head + primary-pinned tail.
    return [
        (offset, last_chunk_start - offset, all_replicas),
        (last_chunk_start, end - last_chunk_start, [metadata.primary]),
    ]

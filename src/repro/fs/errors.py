"""Filesystem error types."""

from __future__ import annotations


class FsError(Exception):
    """Base class for Mayflower filesystem errors."""


class FileNotFoundFsError(FsError):
    """The named file does not exist (or was deleted)."""


class FileAlreadyExistsError(FsError):
    """Creation of a file whose name is already taken."""


class ReplicaUnavailableError(FsError):
    """No reachable replica can serve the request."""


class InvalidRequestError(FsError):
    """Malformed client request (bad offsets, sizes, etc.)."""


class OperationTimeoutError(FsError):
    """A client operation exhausted its overall deadline.

    Raised by :class:`~repro.fs.client.MayflowerClient` when a
    :class:`~repro.fs.retry.RetryPolicy` with ``operation_deadline`` runs
    out of simulated-time budget across attempts and backoff.
    """


class LeaseExpiredError(FsError):
    """A dataserver's primary lease lapsed (or was revoked) for a file.

    The write pipeline's fencing signal: a primary whose lease cannot be
    (re)validated must reject appends rather than commit on stale
    authority.  Clients treat this as transient — refresh metadata and
    retry at whichever replica now holds the lease.
    """


class NotPrimaryError(InvalidRequestError):
    """An append-path RPC reached a replica that is not the file's primary.

    Subclasses :class:`InvalidRequestError` for backward compatibility
    with callers that treated misdirected appends as malformed requests —
    but unlike other invalid requests it is *transient* to the retrying
    client, which refreshes metadata and resends to the new primary.
    """


class WrongPartitionError(FsError):
    """A metadata RPC reached a nameserver partition that does not own
    the file's namespace shard.

    Carries the responding partition's current shard-map ``epoch`` so a
    client routing on a stale cached map can tell *why* it missed:
    ``epoch`` newer than the cached map means the map moved — refetch it
    and retry; same epoch means a caller bug (routing bypassed the map).
    """

    def __init__(self, message: str, epoch: int = 0) -> None:
        super().__init__(message)
        self.epoch = epoch


class StaleEpochError(FsError):
    """An append carried an epoch older than the file's current lease epoch.

    Raised by the nameserver when a fenced-out primary reports a commit,
    and by secondaries when a stale primary relays one.  The append is
    NOT acknowledged; the stale replica's local bytes are repaired by
    truncation when the current primary next relays to it.
    """

"""Filesystem error types."""

from __future__ import annotations


class FsError(Exception):
    """Base class for Mayflower filesystem errors."""


class FileNotFoundFsError(FsError):
    """The named file does not exist (or was deleted)."""


class FileAlreadyExistsError(FsError):
    """Creation of a file whose name is already taken."""


class ReplicaUnavailableError(FsError):
    """No reachable replica can serve the request."""


class InvalidRequestError(FsError):
    """Malformed client request (bad offsets, sizes, etc.)."""


class OperationTimeoutError(FsError):
    """A client operation exhausted its overall deadline.

    Raised by :class:`~repro.fs.client.MayflowerClient` when a
    :class:`~repro.fs.retry.RetryPolicy` with ``operation_deadline`` runs
    out of simulated-time budget across attempts and backoff.
    """

"""Dataserver liveness tracking and automatic re-replication.

The paper's design goals (§3.2) include "similar … reliability, fault
tolerance and availability properties to that of current widely-deployed
distributed filesystems, namely, GFS and HDFS" — whose core availability
mechanism is heartbeat-driven failure detection followed by
re-replication of under-replicated files.  This module supplies that
substrate:

* :class:`MembershipTracker` — receives dataserver heartbeats (an RPC
  service co-located with the nameserver) and classifies hosts as dead
  once they miss heartbeats for ``timeout`` seconds;
* :class:`HeartbeatSender` — the dataserver-side periodic beacon;
* :class:`ReplicaManager` — scans the namespace for files with dead
  replicas, copies the data from a surviving replica to a freshly chosen
  host (respecting the fault-domain constraints of §3.1), promotes a
  survivor to primary when the primary died, and updates the mapping.
"""

from __future__ import annotations

from random import Random
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Sequence, Set

from repro.fs.chunks import FileMetadata
from repro.fs.nameserver import Nameserver
from repro.net.topology import Topology
from repro.sim.engine import EventLoop, PeriodicTimer
from repro.sim.process import Process

if TYPE_CHECKING:
    from repro.fs.leases import LeaseManager
    from repro.rpc.fabric import RpcFabric

MEMBERSHIP_SERVICE = "membership"


class MembershipTracker:
    """Heartbeat registry; registered as an RPC service.

    With a :class:`~repro.fs.leases.LeaseManager` attached, every
    heartbeat also renews the sender's primary leases — the write
    pipeline's liveness signal rides the membership beacon instead of
    adding a second periodic RPC per file.
    """

    def __init__(
        self,
        loop: EventLoop,
        expected_hosts: Sequence[str],
        lease_manager: Optional["LeaseManager"] = None,
    ) -> None:
        self._loop = loop
        self._last_seen: Dict[str, float] = {
            host: loop.now for host in expected_hosts
        }
        self._lease_manager = lease_manager
        self.heartbeats_received = 0

    def heartbeat(self, host_id: str) -> float:
        """RPC handler: a dataserver announced it is alive."""
        self._last_seen[host_id] = self._loop.now
        self.heartbeats_received += 1
        if self._lease_manager is not None:
            self._lease_manager.renew_for_host(host_id)
        return self._loop.now

    def last_seen(self, host_id: str) -> Optional[float]:
        return self._last_seen.get(host_id)

    def dead_hosts(self, timeout: float) -> List[str]:
        """Hosts silent for longer than ``timeout`` seconds."""
        now = self._loop.now
        return sorted(
            host
            for host, seen in self._last_seen.items()
            if now - seen > timeout
        )

    def alive_hosts(self, timeout: float) -> List[str]:
        now = self._loop.now
        return sorted(
            host
            for host, seen in self._last_seen.items()
            if now - seen <= timeout
        )


class HeartbeatSender:
    """Periodic dataserver beacon to the membership service."""

    def __init__(
        self,
        loop: EventLoop,
        fabric: "RpcFabric",
        host_id: str,
        membership_endpoint: str,
        interval: float = 5.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._loop = loop
        self._fabric = fabric
        self.host_id = host_id
        self._endpoint = membership_endpoint
        self.interval = interval
        self._timer = PeriodicTimer(loop, interval, self._beat, first_delay=0.0)

    def _beat(self) -> None:
        def body() -> Generator:
            from repro.rpc.errors import RpcError

            try:
                yield from self._fabric.invoke(
                    self.host_id,
                    self._endpoint,
                    MEMBERSHIP_SERVICE,
                    "heartbeat",
                    self.host_id,
                )
            except RpcError:
                pass  # membership service unreachable; try again next beat

        Process(self._loop, body(), name=f"heartbeat:{self.host_id}")

    def stop(self) -> None:
        self._timer.stop()


class ReplicaManager:
    """Detects dead replicas and restores the replication factor.

    Repair procedure per damaged file: pick a surviving replica as the
    copy source, pick a replacement host that is alive, not already a
    replica and in an unused rack (falling back to any alive host), push
    the data, then commit the new mapping — with a surviving replica
    promoted to primary when the old primary died.
    """

    def __init__(
        self,
        loop: EventLoop,
        fabric: "RpcFabric",
        nameserver: Nameserver,
        nameserver_endpoint: str,
        membership: MembershipTracker,
        topology: Topology,
        rng: Random,
        check_interval: float = 10.0,
        heartbeat_timeout: float = 15.0,
        lease_manager: Optional["LeaseManager"] = None,
    ) -> None:
        self._loop = loop
        self._fabric = fabric
        self._nameserver = nameserver
        self._endpoint = nameserver_endpoint
        self._membership = membership
        self._topo = topology
        self._rng = rng
        self.check_interval = check_interval
        self.heartbeat_timeout = heartbeat_timeout
        #: When set, a repair that moves primaryship also moves the lease
        #: (with an epoch bump) so the promoted survivor can commit
        #: immediately and the dead primary's epoch is fenced.
        self._lease_manager = lease_manager
        self.repairs_completed = 0
        self.files_lost = 0
        self.promotions = 0
        self.drains_completed = 0
        self._repair_in_flight = False
        self._timer = PeriodicTimer(loop, check_interval, self._tick)

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    # Periodic check
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        if self._repair_in_flight:
            return
        dead = set(self._membership.dead_hosts(self.heartbeat_timeout))
        if not dead:
            return
        self._repair_in_flight = True

        def done(_payload: object) -> None:
            self._repair_in_flight = False

        proc = Process(self._loop, self.repair_all(dead), name="replica-repair")
        proc.done_signal.add_waiter(done)

    def repair_all(self, dead: Set[str]) -> Generator:
        """Repair every file with replicas on ``dead`` hosts."""
        repaired = 0
        for name in self._nameserver.list_files():
            try:
                metadata = FileMetadata.from_json_dict(self._nameserver.lookup(name))
            except Exception:  # noqa: BLE001 - deleted concurrently
                continue
            if not set(metadata.replicas) & dead:
                continue
            outcome = yield from self.repair_file(metadata, dead)
            if outcome:
                repaired += 1
        return repaired

    def repair_file(self, metadata: FileMetadata, dead: Set[str]) -> Generator:
        """Restore one file's replication factor; returns success."""
        survivors = [r for r in metadata.replicas if r not in dead]
        if not survivors:
            self.files_lost += 1
            return False
        new_replicas = list(survivors)  # survivors first: promotes a live primary
        needed = len(metadata.replicas) - len(survivors)
        source = survivors[0]
        for _ in range(needed):
            replacement = self._choose_replacement(new_replicas, dead)
            if replacement is None:
                return False
            yield from self._fabric.invoke(
                self._endpoint,
                source,
                "dataserver",
                "push_replica",
                metadata.file_id,
                replacement,
            )
            new_replicas.append(replacement)
        import inspect

        # works against both the plain nameserver (sync) and the
        # Paxos-replicated one (a propose generator)
        outcome = self._nameserver.update_replicas(metadata.name, new_replicas)
        if inspect.isgenerator(outcome):
            yield from outcome
        if new_replicas[0] != metadata.primary and self._lease_manager is not None:
            self._lease_manager.promote(metadata.file_id, new_replicas[0])
            self.promotions += 1
        # Tell the surviving replicas about the rewritten set so their
        # local metadata (primaryship fallback, legacy relay targets)
        # matches the nameserver's.  Best-effort: a host that is briefly
        # unreachable will learn the set on its next catch-up/relay.
        from repro.rpc.errors import RpcError

        for replica in new_replicas:
            try:
                yield from self._fabric.invoke(
                    self._endpoint,
                    replica,
                    "dataserver",
                    "update_replica_set",
                    metadata.file_id,
                    list(new_replicas),
                )
            except RpcError:
                continue
        self.repairs_completed += 1
        return True

    # ------------------------------------------------------------------
    # Graceful drain (planned decommission)
    # ------------------------------------------------------------------

    def drain(self, host: str) -> Generator:
        """Hand off every primaryship ``host`` holds before it goes away.

        The planned-decommission counterpart of :meth:`repair_all`: for
        each file whose primary is ``host`` and that has at least one
        other replica, promote the first secondary — rewrite the replica
        set with it in front, transfer the lease to it (epoch + 1, via
        :meth:`~repro.fs.leases.LeaseManager.transfer`) and broadcast
        the new set to the replicas.  Clients never see a
        ``LeaseExpiredError`` window: the lease moves immediately
        instead of running out, and the drained host's next commit
        attempt fences cleanly into a metadata refresh.

        Returns the number of files handed off.  Data is not copied —
        the drained host is still a (secondary) replica until a later
        replica-set change removes it.
        """
        from repro.rpc.errors import RpcError

        import inspect

        drained = 0
        for name in self._nameserver.list_files():
            try:
                metadata = FileMetadata.from_json_dict(
                    self._nameserver.lookup(name)
                )
            except Exception:  # noqa: BLE001 - deleted concurrently
                continue
            if metadata.primary != host or len(metadata.replicas) < 2:
                continue
            successor = metadata.replicas[1]
            new_replicas = [successor] + [
                r for r in metadata.replicas if r != successor
            ]
            outcome = self._nameserver.update_replicas(
                metadata.name, new_replicas
            )
            if inspect.isgenerator(outcome):
                yield from outcome
            if self._lease_manager is not None:
                self._lease_manager.transfer(
                    metadata.file_id, host, successor
                )
            for replica in new_replicas:
                try:
                    yield from self._fabric.invoke(
                        self._endpoint,
                        replica,
                        "dataserver",
                        "update_replica_set",
                        metadata.file_id,
                        list(new_replicas),
                    )
                except RpcError:
                    continue
            drained += 1
        self.drains_completed += drained
        return drained

    def _choose_replacement(
        self, current: Sequence[str], dead: Set[str]
    ) -> Optional[str]:
        alive = [
            h
            for h in self._membership.alive_hosts(self.heartbeat_timeout)
            if h not in current and h not in dead
        ]
        if not alive:
            return None
        used_racks = {self._topo.hosts[r].rack for r in current}
        fresh_racks = [h for h in alive if self._topo.hosts[h].rack not in used_racks]
        pool = fresh_racks or alive
        return pool[self._rng.randrange(len(pool))]

"""The Mayflower distributed filesystem.

Standard GFS/HDFS-shaped components (§3.3):

* :mod:`repro.fs.nameserver` — file→chunks and file→dataservers mappings
  backed by the :mod:`repro.kvstore` (LevelDB stand-in), replica placement
  at creation, rebuild-from-dataservers recovery;
* :mod:`repro.fs.dataserver` — chunk storage with append-only semantics;
  each file has a primary dataserver that orders appends and relays them
  to the other replica hosts;
* :mod:`repro.fs.client` — the client library (create/read/append/delete)
  with metadata caching and Flowserver-driven replica selection on reads;
* :mod:`repro.fs.placement` — replica placement policies (the paper's
  evaluation placement and HDFS-style rack-aware placement);
* :mod:`repro.fs.chunks` — file/chunk metadata structures;
* :mod:`repro.fs.consistency` — sequential vs strong consistency (§3.4);
* :mod:`repro.fs.leases` — nameserver-granted primary leases with epoch
  fencing, the authority substrate of the two-phase write pipeline;
* :mod:`repro.fs.shardmap` — consistent-hash partitioning of the
  namespace across nameserver shards, with epoch-versioned shard maps.
"""

from repro.fs.chunks import FileMetadata, chunk_count, chunk_ranges
from repro.fs.client import MayflowerClient, ReadResult
from repro.fs.consistency import ConsistencyMode
from repro.fs.dataserver import Dataserver, LedgerEntry
from repro.fs.errors import (
    FileAlreadyExistsError,
    FileNotFoundFsError,
    FsError,
    LeaseExpiredError,
    NotPrimaryError,
    ReplicaUnavailableError,
    StaleEpochError,
    WrongPartitionError,
)
from repro.fs.shardmap import (
    PartitionGuard,
    ShardMap,
    ShardRouter,
    partition_for,
)
from repro.fs.leases import LeaseGrant, LeaseManager
from repro.fs.membership import (
    HeartbeatSender,
    MembershipTracker,
    ReplicaManager,
)
from repro.fs.nameserver import Nameserver
from repro.fs.placement import HdfsRackAwarePlacement, PaperEvalPlacement

__all__ = [
    "ConsistencyMode",
    "Dataserver",
    "FileAlreadyExistsError",
    "FileMetadata",
    "FileNotFoundFsError",
    "FsError",
    "HdfsRackAwarePlacement",
    "HeartbeatSender",
    "LeaseExpiredError",
    "LeaseGrant",
    "LeaseManager",
    "LedgerEntry",
    "MayflowerClient",
    "MembershipTracker",
    "Nameserver",
    "NotPrimaryError",
    "ReplicaManager",
    "PaperEvalPlacement",
    "PartitionGuard",
    "ReadResult",
    "ReplicaUnavailableError",
    "ShardMap",
    "ShardRouter",
    "StaleEpochError",
    "WrongPartitionError",
    "chunk_count",
    "chunk_ranges",
]

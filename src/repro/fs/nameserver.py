"""The nameserver (§3.3.1).

Manages the filesystem namespace: file→chunks and file→dataservers
mappings, stored in a persistent key-value database (the paper uses
LevelDB with fsync off; we use :mod:`repro.kvstore` identically
configured).  Placement happens here at creation time using static
fault-domain information.

Recovery: after a *graceful* shutdown the database is authoritative;
after an *unexpected* restart the nameserver distrusts the possibly-stale
database and rebuilds the mappings by scanning the file metadata stored
at the dataservers (:meth:`Nameserver.rebuild_from_dataservers`).
"""

from __future__ import annotations

import json
from pathlib import Path
from random import Random
from typing import TYPE_CHECKING, Generator, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.rpc.fabric import RpcFabric

from repro.fs.chunks import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_REPLICATION,
    FileMetadata,
)
from repro.fs.errors import (
    FileAlreadyExistsError,
    FileNotFoundFsError,
    InvalidRequestError,
)
from repro.fs.placement import PlacementPolicy
from repro.kvstore import KVStore, KVStoreConfig
from repro.sim import instrument
from repro.sim.randomness import seeded_rng

_FILE_PREFIX = "file/"


class Nameserver:
    """Centralized namespace manager.

    Parameters
    ----------
    db_directory:
        Backing store location for the metadata database.
    placement:
        Policy choosing replica hosts for new files.
    rng:
        Used to derive deterministic file ids (UUID-shaped) so whole
        simulations are reproducible from one seed.
    """

    def __init__(
        self,
        db_directory: Path,
        placement: PlacementPolicy,
        rng: Optional[Random] = None,
    ) -> None:
        # The paper runs LevelDB with fsync off to speed up creates/deletes.
        self._db = KVStore(Path(db_directory), KVStoreConfig(sync_wal=False))
        self._placement = placement
        self._rng = rng or seeded_rng(0)
        #: When the lease-guarded write pipeline is armed, the cluster
        #: attaches its :class:`repro.fs.leases.LeaseManager` here so
        #: epoch-stamped ``record_append`` reports can be fenced.
        self.lease_manager = None
        #: Optional simulated clock (the cluster attaches its event loop)
        #: so nameserver-side telemetry instants carry sim timestamps;
        #: without one the instants are simply skipped.
        self.clock = None
        self.creates = 0
        self.deletes = 0
        self.lookups = 0
        self.fenced_records = 0

    # ------------------------------------------------------------------
    # RPC surface
    # ------------------------------------------------------------------

    def create(
        self,
        name: str,
        replication: int = DEFAULT_REPLICATION,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        writer: Optional[str] = None,
    ) -> dict:
        """Create a file: place replicas and persist the mapping.

        ``writer`` (the creating client's host, when known) lets
        congestion-aware placement policies score the write path.
        Returns the metadata as a JSON dict (the RPC wire format).
        """
        if not name:
            raise InvalidRequestError("file name must be non-empty")
        if self._db.get(_FILE_PREFIX + name) is not None:
            raise FileAlreadyExistsError(f"file {name!r} already exists")
        replicas = self._placement.place(replication, writer=writer)
        metadata = FileMetadata(
            name=name,
            file_id=self._new_file_id(),
            size_bytes=0,
            chunk_bytes=chunk_bytes,
            replicas=tuple(replicas),
        )
        self._db.put(_FILE_PREFIX + name, json.dumps(metadata.to_json_dict()))
        self.creates += 1
        return metadata.to_json_dict()

    def install(self, metadata_dict: dict) -> Optional[dict]:
        """Insert pre-built metadata (the replicated-state-machine path).

        Placement has already been decided by the proposer, so this applies
        deterministically on every replica.  Returns the metadata, or
        ``None`` when the name is already taken (a duplicate create that
        lost the race in the log).
        """
        name = metadata_dict["name"]
        if self._db.get(_FILE_PREFIX + name) is not None:
            return None
        self._db.put(_FILE_PREFIX + name, json.dumps(metadata_dict))
        self.creates += 1
        return metadata_dict

    def new_file_id(self) -> str:
        """A fresh deterministic file id (used by the replication layer)."""
        return self._new_file_id()

    def lookup(self, name: str) -> dict:
        """Fetch a file's metadata (including its current size)."""
        raw = self._db.get(_FILE_PREFIX + name)
        if raw is None:
            raise FileNotFoundFsError(f"no file named {name!r}")
        self.lookups += 1
        return json.loads(raw)

    def exists(self, name: str) -> bool:
        return self._db.get(_FILE_PREFIX + name) is not None

    def delete(self, name: str) -> dict:
        """Remove a file from the namespace; returns its final metadata.

        The caller (client library) is responsible for telling the replica
        dataservers to reclaim the chunks.
        """
        raw = self._db.get(_FILE_PREFIX + name)
        if raw is None:
            raise FileNotFoundFsError(f"no file named {name!r}")
        self._db.delete(_FILE_PREFIX + name)
        self.deletes += 1
        return json.loads(raw)

    def move(self, src_name: str, dst_name: str) -> dict:
        """Atomically rename ``src_name`` to ``dst_name``.

        If the destination exists it is replaced — this is the §3.3
        random-write emulation primitive ("creating and modifying a new
        copy of the file and using a move operation to overwrite the
        original").  Returns ``{"moved": metadata, "replaced":
        metadata-or-None}``; the caller reclaims the replaced replicas.
        """
        if not dst_name:
            raise InvalidRequestError("destination name must be non-empty")
        if src_name == dst_name:
            raise InvalidRequestError("move source and destination are identical")
        raw = self._db.get(_FILE_PREFIX + src_name)
        if raw is None:
            raise FileNotFoundFsError(f"no file named {src_name!r}")
        replaced_raw = self._db.get(_FILE_PREFIX + dst_name)
        replaced = json.loads(replaced_raw) if replaced_raw else None
        metadata = FileMetadata.from_json_dict(json.loads(raw))
        moved = FileMetadata(
            name=dst_name,
            file_id=metadata.file_id,
            size_bytes=metadata.size_bytes,
            chunk_bytes=metadata.chunk_bytes,
            replicas=metadata.replicas,
        )
        self._db.delete(_FILE_PREFIX + src_name)
        self._db.put(_FILE_PREFIX + dst_name, json.dumps(moved.to_json_dict()))
        return {"moved": moved.to_json_dict(), "replaced": replaced}

    def record_append(
        self,
        name: str,
        new_size_bytes: int,
        epoch: Optional[int] = None,
        primary: Optional[str] = None,
    ) -> int:
        """Primary dataserver reports a committed append; size is monotonic.

        Pipelined appends additionally carry the primary's lease
        ``epoch`` and identity: with a :class:`LeaseManager` attached,
        the report is validated against the current lease before the
        size moves — the nameserver-side half of write fencing.  A
        fenced-out primary's report raises
        :class:`~repro.fs.errors.StaleEpochError` and changes nothing.
        """
        raw = self._db.get(_FILE_PREFIX + name)
        if raw is None:
            raise FileNotFoundFsError(f"no file named {name!r}")
        metadata = FileMetadata.from_json_dict(json.loads(raw))
        if epoch is not None and primary is not None and self.lease_manager is not None:
            try:
                self.lease_manager.validate(metadata.file_id, primary, epoch)
            except Exception:
                self.fenced_records += 1
                raise
        if new_size_bytes < metadata.size_bytes:
            raise InvalidRequestError(
                f"append would shrink {name!r}: "
                f"{new_size_bytes} < {metadata.size_bytes}"
            )
        updated = metadata.with_size(new_size_bytes)
        self._db.put(_FILE_PREFIX + name, json.dumps(updated.to_json_dict()))
        tel = instrument.TELEMETRY
        if tel is not None and self.clock is not None:
            tel.instant(self.clock.now, "ns.record_append", "ns",
                        file=name, size=new_size_bytes, epoch=epoch,
                        primary=primary)
        return new_size_bytes

    def update_replicas(self, name: str, replicas: List[str]) -> dict:
        """Replace a file's replica set (re-replication / migration).

        ``replicas[0]`` becomes the primary, so passing survivors first
        promotes a live host when the old primary died.
        """
        raw = self._db.get(_FILE_PREFIX + name)
        if raw is None:
            raise FileNotFoundFsError(f"no file named {name!r}")
        if not replicas or len(set(replicas)) != len(replicas):
            raise InvalidRequestError(f"invalid replica set {replicas!r}")
        metadata = FileMetadata.from_json_dict(json.loads(raw))
        updated = FileMetadata(
            name=metadata.name,
            file_id=metadata.file_id,
            size_bytes=metadata.size_bytes,
            chunk_bytes=metadata.chunk_bytes,
            replicas=tuple(replicas),
        )
        self._db.put(_FILE_PREFIX + name, json.dumps(updated.to_json_dict()))
        return updated.to_json_dict()

    def list_files(self) -> List[str]:
        """All file names, sorted."""
        return [key[len(_FILE_PREFIX):] for key, _ in self._db.scan(_FILE_PREFIX)]

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def rebuild_from_dataservers(
        self,
        fabric: "RpcFabric",
        self_endpoint: str,
        dataserver_hosts: Sequence[str],
    ) -> Generator:
        """Unexpected-restart path: rebuild mappings by scanning dataservers.

        Clears the (possibly stale) database and repopulates it from the
        metadata each dataserver stores alongside its chunks.  Replica
        preference, highest wins:

        1. **lease epoch** — a replica that saw a higher epoch post-dates
           any promotion, so a stale pre-failover primary that rejoins
           with a long (diverged, since-truncated-elsewhere) tail cannot
           outvote the survivors;
        2. primary flag (the metadata primary ordered every append);
        3. reported size (largest committed length seen).
        """
        for key, _ in list(self._db.scan(_FILE_PREFIX)):
            self._db.delete(key)
        recovered = {}
        for host in dataserver_hosts:
            listings = yield from fabric.invoke(
                self_endpoint, host, "dataserver", "list_files"
            )
            for metadata_dict in listings:
                metadata = FileMetadata.from_json_dict(metadata_dict)
                epoch = int(metadata_dict.get("epoch", 0))
                existing = recovered.get(metadata.name)
                if existing is None:
                    recovered[metadata.name] = (
                        metadata, epoch, host == metadata.primary
                    )
                    continue
                current, cur_epoch, from_primary = existing
                if epoch > cur_epoch:
                    recovered[metadata.name] = (
                        metadata, epoch, host == metadata.primary
                    )
                elif epoch == cur_epoch:
                    if host == metadata.primary:
                        recovered[metadata.name] = (metadata, epoch, True)
                    elif not from_primary and metadata.size_bytes > current.size_bytes:
                        recovered[metadata.name] = (metadata, epoch, False)
        for name, (metadata, _, _) in sorted(recovered.items()):
            self._db.put(_FILE_PREFIX + name, json.dumps(metadata.to_json_dict()))
        return len(recovered)

    def close(self) -> None:
        """Graceful shutdown: flush the database so restart is instant."""
        self._db.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _new_file_id(self) -> str:
        """Deterministic UUID-shaped id derived from the seeded RNG."""
        bits = self._rng.getrandbits(128)
        hex32 = f"{bits:032x}"
        return (
            f"{hex32[0:8]}-{hex32[8:12]}-{hex32[12:16]}-"
            f"{hex32[16:20]}-{hex32[20:32]}"
        )

"""The Mayflower client library (§5).

Provides an HDFS-like interface — create, read, append (write), delete —
implemented as cooperative processes over the RPC fabric.  During reads the
client consults a :class:`ReadPlanner` (normally the Flowserver, §3.3) to
pick replica(s) and path(s), then asks the chosen dataserver(s) to stream
the data.  File metadata is cached client-side: append-only semantics make
the chunk map safe to cache, and each read reply carries the file's current
size so appended tails are discovered without another nameserver round-trip.
"""

from __future__ import annotations

import itertools
from random import Random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.fs.chunks import DEFAULT_CHUNK_BYTES, DEFAULT_REPLICATION, FileMetadata
from repro.fs.consistency import ConsistencyMode, replica_candidates_for_range
from repro.fs.errors import InvalidRequestError, WrongPartitionError
from repro.fs.retry import RetryPolicy
from repro.fs.shardmap import NAME_ROUTED_METHODS, ShardMap, ShardRouter
from repro.sim import instrument
from repro.sim.engine import EventLoop
from repro.sim.process import Delay, Process

if TYPE_CHECKING:
    from repro.rpc.fabric import RpcFabric


@dataclass(frozen=True)
class PlannedTransfer:
    """One transfer a read planner decided on."""

    replica: str
    size_bytes: int
    flow_id: Optional[str] = None
    path: Optional[object] = None  # repro.net.routing.Path when pre-routed


class ReadPlanner:
    """Strategy choosing replica(s) for a read.

    ``plan`` is a generator (it may issue RPCs, e.g. to the Flowserver)
    returning a list of :class:`PlannedTransfer` that together cover
    ``size_bytes``.
    """

    def plan(
        self,
        client_host: str,
        metadata: FileMetadata,
        replicas: Sequence[str],
        size_bytes: int,
        job_id: Optional[str] = None,
    ) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover


class WriteFanoutPlanner:
    """Strategy choosing the replication fan-out shape for one append.

    ``plan`` is a generator returning a
    :class:`repro.core.fanout.FanoutPlan` — the push hop plus the relay
    topology (chain, tree, or the static-chain fallback) the primary
    should use for this append.
    """

    def plan(
        self,
        client_host: str,
        metadata: FileMetadata,
        size_bytes: int,
        job_id: Optional[str] = None,
    ) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a client read."""

    name: str
    offset: int
    length: int
    duration: float
    transfers: Sequence[PlannedTransfer]
    file_size: int
    data: Optional[bytes]


@dataclass
class _CacheEntry:
    metadata: FileMetadata
    cached_at: float


class MayflowerClient:
    """Filesystem client bound to one host.

    Parameters
    ----------
    host_id:
        The topology host this client runs on.
    fabric:
        RPC fabric shared with the servers.
    nameserver_endpoint:
        Where the nameserver service lives.
    planner:
        Read planning strategy (Flowserver-backed for Mayflower, or one of
        the baseline planners).
    consistency:
        Read consistency mode (§3.4).
    metadata_ttl:
        Seconds a cached file→dataservers mapping stays fresh; the paper
        ties this to replica-migration / failure timescales.
    """

    def __init__(
        self,
        host_id: str,
        loop: EventLoop,
        fabric: "RpcFabric",
        nameserver_endpoint: str,
        planner: ReadPlanner,
        consistency: ConsistencyMode = ConsistencyMode.SEQUENTIAL,
        metadata_ttl: float = 60.0,
        max_read_attempts: int = 3,
        retry: Optional[RetryPolicy] = None,
        retry_rng: Optional[Random] = None,
        write_pipeline: bool = False,
        fanout_planner: Optional[WriteFanoutPlanner] = None,
        shard_router: Optional[ShardRouter] = None,
    ) -> None:
        self.host_id = host_id
        self._loop = loop
        self._fabric = fabric
        # One endpoint for the paper's centralized nameserver, or several
        # for a replicated deployment (§3.3.1); calls fail over in order.
        if isinstance(nameserver_endpoint, str):
            self._ns_endpoints = [nameserver_endpoint]
        else:
            self._ns_endpoints = list(nameserver_endpoint)
        if not self._ns_endpoints:
            raise ValueError("at least one nameserver endpoint is required")
        self._planner = planner
        self.consistency = consistency
        self.metadata_ttl = metadata_ttl
        self.max_read_attempts = max(1, max_read_attempts)
        #: Optional backoff/deadline policy; ``None`` keeps the historical
        #: immediate-failover behaviour (and the historical event timeline,
        #: bit-for-bit, since no delays or RNG draws are ever introduced).
        self._retry = retry
        self._retry_rng = retry_rng
        #: Use the two-phase lease-guarded append path (push_data +
        #: commit_append) instead of the legacy one-shot append RPC.
        self.write_pipeline = write_pipeline
        #: Fan-out shape strategy for pipelined appends; ``None`` makes
        #: the primary relay over the static metadata chain.
        self._fanout_planner = fanout_planner
        #: Cached shard map for a partitioned nameserver; ``None`` (the
        #: monolithic default) routes every call over ``_ns_endpoints``
        #: exactly as before, with zero extra RPCs or draws.
        self._shard_router = shard_router
        #: Monotonic source of client-unique append ids — the idempotence
        #: tokens the primary dedups retried appends with.
        self._append_seq = itertools.count()
        self._cache: Dict[str, _CacheEntry] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.read_failovers = 0
        self.read_retries = 0
        self.read_resumptions = 0
        self.bytes_resumed = 0
        self.append_retries = 0
        self.append_failovers = 0

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------

    def create(
        self,
        name: str,
        replication: int = DEFAULT_REPLICATION,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> Generator:
        """Create a file; registers the replica set on every dataserver."""
        metadata_dict = yield from self._invoke_nameserver(
            "create", name, replication, chunk_bytes, self.host_id
        )
        metadata = FileMetadata.from_json_dict(metadata_dict)
        creates = [
            self._spawn_invoke(replica, "dataserver", "create_file", metadata_dict)
            for replica in metadata.replicas
        ]
        for proc in creates:
            yield proc
        self._remember(name, metadata)
        return metadata

    def delete(self, name: str) -> Generator:
        """Delete a file from the namespace and reclaim replicas."""
        metadata_dict = yield from self._invoke_nameserver("delete", name)
        metadata = FileMetadata.from_json_dict(metadata_dict)
        self._cache.pop(name, None)
        deletes = [
            self._spawn_invoke(replica, "dataserver", "delete_file", metadata.file_id)
            for replica in metadata.replicas
        ]
        for proc in deletes:
            yield proc
        return metadata

    def move(self, src_name: str, dst_name: str) -> Generator:
        """Rename a file, replacing any existing destination (§3.3).

        The random-write workflow: write a fresh copy under a temporary
        name, then ``move`` it over the original — readers see either the
        whole old file or the whole new one, never a mix.
        """
        result = yield from self._invoke_nameserver("move", src_name, dst_name)
        moved = FileMetadata.from_json_dict(result["moved"])
        replaced = (
            FileMetadata.from_json_dict(result["replaced"])
            if result["replaced"]
            else None
        )
        cleanups = []
        if replaced is not None:
            cleanups.extend(
                self._spawn_invoke(r, "dataserver", "delete_file", replaced.file_id)
                for r in replaced.replicas
            )
        cleanups.extend(
            self._spawn_invoke(r, "dataserver", "rename_file", moved.file_id, dst_name)
            for r in moved.replicas
        )
        for proc in cleanups:
            yield proc
        self._cache.pop(src_name, None)
        self._remember(dst_name, moved)
        return moved

    def stat(self, name: str) -> Generator:
        """Fresh metadata straight from the nameserver (bypasses the cache)."""
        metadata_dict = yield from self._invoke_nameserver("lookup", name)
        metadata = FileMetadata.from_json_dict(metadata_dict)
        self._remember(name, metadata)
        return metadata

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------

    def append(
        self, name: str, size_bytes: int, data: Optional[bytes] = None,
        job_id: Optional[str] = None,
    ) -> Generator:
        """Append to a file through its primary replica; returns new size.

        Every append carries a client-unique ``append_id`` the primary
        dedups against, so retries after an ``RpcTimeout`` (which may
        have committed before the ack was lost) can never double-commit.
        With ``write_pipeline`` enabled the append runs the two-phase
        push/commit protocol over the planned fan-out topology;
        otherwise the legacy one-shot append RPC is used — in both
        cases, with the same retry/failover discipline reads already
        have: transient failures (host down, timeout, fenced or demoted
        primary) refresh the metadata and retry after backoff.
        """
        if size_bytes <= 0:
            raise InvalidRequestError(f"append size must be positive: {size_bytes}")
        append_id = f"ap:{self.host_id}:{next(self._append_seq)}"
        tel = instrument.TELEMETRY
        append_ctx: Optional[instrument.TraceContext] = None
        previous_ctx: Optional[instrument.TraceContext] = None
        if tel is not None:
            # Root span of the operation tree: every rpc the append makes
            # (plan, push, commit, and the relays those spawn) hangs off
            # the context installed here for the append's dynamic extent.
            append_ctx = tel.start_span(
                self._loop.now, "client.append", "append", track="appends",
                span_id=tel.next_id("append"), host=self.host_id, file=name,
                append=append_id, bytes=size_bytes,
            )
            previous_ctx = instrument.set_context(append_ctx)
        try:
            if self.write_pipeline:
                new_size = yield from self._append_pipelined(
                    name, size_bytes, data, append_id, job_id
                )
            else:
                new_size = yield from self._append_legacy(
                    name, size_bytes, data, append_id, job_id
                )
        except BaseException as err:
            tel = instrument.TELEMETRY
            if tel is not None and append_ctx is not None:
                tel.finish_span(self._loop.now, append_ctx, "client.append",
                                "append", track="appends", outcome="error",
                                error=type(err).__name__)
            raise
        finally:
            if append_ctx is not None:
                instrument.set_context(previous_ctx)
        tel = instrument.TELEMETRY
        if tel is not None and append_ctx is not None:
            tel.finish_span(self._loop.now, append_ctx, "client.append",
                            "append", track="appends", outcome="committed",
                            new_size=new_size)
        return new_size

    def _append_legacy(
        self,
        name: str,
        size_bytes: int,
        data: Optional[bytes],
        append_id: str,
        job_id: Optional[str],
    ) -> Generator:
        """One-shot append with retry parity to the read path."""
        policy = self._retry
        rpc_timeout = policy.rpc_timeout if policy is not None else None
        attempts = policy.max_attempts if policy is not None else 1
        deadline = (
            self._loop.now + policy.operation_deadline
            if policy is not None and policy.operation_deadline is not None
            else None
        )
        last_error: Optional[Exception] = None
        metadata = yield from self._metadata(name)
        for attempt_index in range(attempts):
            if attempt_index > 0:
                yield from self._append_backoff(attempt_index, name, deadline, last_error)
                previous_primary = metadata.primary
                metadata = yield from self.stat(name)
                self._note_append_failover(previous_primary, metadata.primary)
            try:
                new_size = yield from self._fabric.invoke(
                    self.host_id,
                    metadata.primary,
                    "dataserver",
                    "append",
                    metadata.file_id,
                    size_bytes,
                    self.host_id,
                    data,
                    job_id,
                    append_id,
                    rpc_timeout=rpc_timeout,
                )
                self._remember(name, metadata.with_size(new_size))
                return new_size
            except Exception as err:
                if policy is None or not self._append_error_is_transient(err):
                    raise
                last_error = err
        from repro.fs.errors import ReplicaUnavailableError

        raise ReplicaUnavailableError(
            f"append to {name!r} failed after {attempts} attempt(s): {last_error}"
        )

    def _append_pipelined(
        self,
        name: str,
        size_bytes: int,
        data: Optional[bytes],
        append_id: str,
        job_id: Optional[str],
    ) -> Generator:
        """Two-phase append: plan fan-out, push to primary, commit.

        Each attempt re-plans — a retry after failover pushes to (and
        commits at) whichever replica the refreshed metadata names as
        primary, over a fan-out shape priced against the network state
        at retry time.
        """
        from repro.core.fanout import static_chain_plan

        policy = self._retry
        rpc_timeout = policy.rpc_timeout if policy is not None else None
        attempts = policy.max_attempts if policy is not None else 1
        deadline = (
            self._loop.now + policy.operation_deadline
            if policy is not None and policy.operation_deadline is not None
            else None
        )
        last_error: Optional[Exception] = None
        metadata = yield from self._metadata(name)
        for attempt_index in range(attempts):
            if attempt_index > 0:
                yield from self._append_backoff(attempt_index, name, deadline, last_error)
                previous_primary = metadata.primary
                metadata = yield from self.stat(name)
                self._note_append_failover(previous_primary, metadata.primary)
            try:
                plan = None
                if self._fanout_planner is not None:
                    try:
                        plan = yield from self._fanout_planner.plan(
                            self.host_id, metadata, size_bytes, job_id=job_id
                        )
                    except Exception as planner_err:
                        if not self._append_error_is_transient(planner_err):
                            raise
                        plan = None
                if plan is None:
                    plan = static_chain_plan(
                        self.host_id, metadata.primary, metadata.replicas[1:]
                    )
                yield from self._fabric.invoke(
                    self.host_id,
                    plan.primary,
                    "dataserver",
                    "push_data",
                    metadata.file_id,
                    append_id,
                    size_bytes,
                    self.host_id,
                    data,
                    plan.push_path,
                    job_id,
                    rpc_timeout=rpc_timeout,
                )
                new_size = yield from self._fabric.invoke(
                    self.host_id,
                    plan.primary,
                    "dataserver",
                    "commit_append",
                    metadata.file_id,
                    append_id,
                    self.host_id,
                    plan.children,
                    job_id,
                    rpc_timeout=rpc_timeout,
                )
                self._remember(name, metadata.with_size(new_size))
                return new_size
            except Exception as err:
                if policy is None or not self._append_error_is_transient(err):
                    raise
                last_error = err
        from repro.fs.errors import ReplicaUnavailableError

        raise ReplicaUnavailableError(
            f"append to {name!r} failed after {attempts} attempt(s): {last_error}"
        )

    def _note_append_failover(self, previous_primary: str, primary: str) -> None:
        """Count a retry whose refreshed metadata names a new primary."""
        if primary != previous_primary:
            self.append_failovers += 1
            tel = instrument.TELEMETRY
            if tel is not None:
                tel.count("client_append_failovers_total")

    def _append_backoff(
        self,
        attempt_index: int,
        name: str,
        deadline: Optional[float],
        last_error: Optional[Exception],
    ) -> Generator:
        """Count, trace and sleep one append retry; enforce the deadline."""
        policy = self._retry
        if deadline is not None and self._loop.now > deadline:
            from repro.fs.errors import OperationTimeoutError

            raise OperationTimeoutError(
                f"append to {name!r} exceeded its "
                f"{policy.operation_deadline:.6g}s deadline: {last_error}"
            )
        self.append_retries += 1
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(self._loop.now, "client.append.retry", "append",
                        host=self.host_id, file=name,
                        error=type(last_error).__name__ if last_error else None)
            tel.count("client_append_retries_total")
        delay = policy.backoff(attempt_index - 1, self._retry_rng)
        if delay > 0:
            yield Delay(delay)

    @staticmethod
    def _append_error_is_transient(err: Exception) -> bool:
        """Whether an append failure can be cured by refresh-and-retry.

        Host/timeout failures obviously retry.  Remote errors retry
        unless the *root* remote exception is a logic error
        (``InvalidRequestError``/``FileNotFoundFsError``) — fencing
        signals (``NotPrimaryError``, ``LeaseExpiredError``,
        ``StaleEpochError``) mean primaryship moved, which fresh
        metadata resolves, and relay-chain failures wrap the transient
        infrastructure error of whichever hop died.
        """
        from repro.fs.errors import (
            FileNotFoundFsError,
            LeaseExpiredError,
            NotPrimaryError,
            StaleEpochError,
        )
        from repro.rpc.errors import (
            HostDownError,
            RemoteInvocationError,
            RpcTimeout,
        )

        if isinstance(err, (HostDownError, RpcTimeout)):
            return True
        if not isinstance(err, RemoteInvocationError):
            return False
        root: Optional[BaseException] = err
        while isinstance(root, RemoteInvocationError):
            root = root.remote_error
        if root is None:
            # The remote error type did not survive the wrap; assume
            # infrastructure trouble and let the attempt budget bound us.
            return True
        if isinstance(root, (NotPrimaryError, LeaseExpiredError, StaleEpochError)):
            return True
        return not isinstance(root, (InvalidRequestError, FileNotFoundFsError))

    def read(
        self,
        name: str,
        offset: int = 0,
        length: Optional[int] = None,
        job_id: Optional[str] = None,
    ) -> Generator:
        """Read ``length`` bytes at ``offset`` (defaults to the whole file).

        Consults the planner per consistency sub-range, fans the transfers
        out in parallel, and completes when the slowest transfer finishes
        (the job completion time the paper measures).
        """
        started = self._loop.now
        tel = instrument.TELEMETRY
        read_id: Optional[str] = None
        read_ctx: Optional[instrument.TraceContext] = None
        previous_ctx: Optional[instrument.TraceContext] = None
        if tel is not None:
            read_id = tel.next_id("read")
            # Root span of the read's operation tree; the context installed
            # here parents the planner and serve_read rpcs (and, through
            # them, everything the dataservers do for this read).
            read_ctx = tel.start_span(started, "client.read", "read",
                                      track="reads", span_id=read_id,
                                      host=self.host_id, file=name)
            previous_ctx = instrument.set_context(read_ctx)
        try:
            metadata = yield from self._metadata(name)
            if length is None:
                length = metadata.size_bytes - offset
            if length <= 0 or offset < 0 or offset + length > metadata.size_bytes:
                raise InvalidRequestError(
                    f"invalid read range {offset}+{length} of {name!r} "
                    f"(size {metadata.size_bytes})"
                )

            subranges = replica_candidates_for_range(
                metadata, offset, length, self.consistency
            )
            all_transfers: List[PlannedTransfer] = []
            readers: List[Process] = []
            chunks: Dict[int, Optional[bytes]] = {}
            reply_sizes: List[int] = []

            slot = 0
            for sub_offset, sub_length, replicas in subranges:
                transfers = yield from self._plan_with_retry(
                    metadata, replicas, sub_length, job_id
                )
                covered = sum(t.size_bytes for t in transfers)
                if covered != sub_length:
                    raise InvalidRequestError(
                        f"planner covered {covered} of {sub_length} bytes"
                    )
                cursor = sub_offset
                for transfer in transfers:
                    all_transfers.append(transfer)
                    readers.append(
                        self._spawn_read(
                            metadata, transfer, cursor, slot, chunks, reply_sizes, job_id
                        )
                    )
                    cursor += transfer.size_bytes
                    slot += 1

            for proc in readers:
                yield proc
        except BaseException as err:
            tel = instrument.TELEMETRY
            if tel is not None and read_id is not None:
                tel.end(self._loop.now, "client.read", "read", read_id,
                        track="reads", outcome="error",
                        error=type(err).__name__)
            raise
        finally:
            if read_ctx is not None:
                instrument.set_context(previous_ctx)

        data = None
        if chunks and all(v is not None for v in chunks.values()):
            data = b"".join(chunks[i] for i in sorted(chunks))
        file_size = max(reply_sizes) if reply_sizes else metadata.size_bytes
        if file_size != metadata.size_bytes:
            # A concurrent append grew the file; refresh the cached size.
            self._remember(name, metadata.with_size(file_size))
        tel = instrument.TELEMETRY
        if tel is not None and read_id is not None:
            tel.end(self._loop.now, "client.read", "read", read_id,
                    track="reads", outcome="completed", length=length,
                    transfers=len(all_transfers))
        return ReadResult(
            name=name,
            offset=offset,
            length=length,
            duration=self._loop.now - started,
            transfers=tuple(all_transfers),
            file_size=file_size,
            data=data,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _invoke_nameserver(self, method: str, *args: Any) -> Generator:
        """Call the nameserver, failing over across replica endpoints.

        Whole-host failures (HostDown), crashed nameserver processes
        (ServiceNotFound) and deadline expiries (RpcTimeout, when the
        retry policy sets one) all trigger the failover.  With a retry
        policy, exhausted endpoint sweeps repeat after exponential
        backoff until attempts or the operation deadline run out.

        With a shard router installed, name-routed calls sweep only the
        owning partition's replica endpoints; a ``WrongPartitionError``
        advertising a newer shard-map epoch triggers a map refetch from
        the rejecting replica and one re-routed sweep.
        """
        from repro.rpc.errors import (
            HostDownError,
            RemoteInvocationError,
            RpcTimeout,
            ServiceNotFoundError,
        )

        policy = self._retry
        rpc_timeout = policy.rpc_timeout if policy is not None else None
        rounds = policy.max_attempts if policy is not None else 1
        deadline = (
            self._loop.now + policy.operation_deadline
            if policy is not None and policy.operation_deadline is not None
            else None
        )
        last_error: Optional[Exception] = None
        for round_index in range(rounds):
            if round_index > 0:
                self.read_retries += 1
                tel = instrument.TELEMETRY
                if tel is not None:
                    tel.count("client_read_retries_total")
                delay = policy.backoff(round_index - 1, self._retry_rng)
                if delay > 0:
                    yield Delay(delay)
            refreshes_left = 1 if self._shard_router is not None else 0
            sweep = True
            while sweep:
                sweep = False
                for endpoint in self._ns_endpoints_for(method, args):
                    if deadline is not None and self._loop.now > deadline:
                        from repro.fs.errors import OperationTimeoutError

                        raise OperationTimeoutError(
                            f"nameserver {method!r} exceeded its "
                            f"{policy.operation_deadline:.6g}s deadline: "
                            f"{last_error}"
                        )
                    try:
                        result = yield from self._fabric.invoke(
                            self.host_id,
                            endpoint,
                            "nameserver",
                            method,
                            *args,
                            rpc_timeout=rpc_timeout,
                        )
                        return result
                    except (HostDownError, ServiceNotFoundError, RpcTimeout) as err:
                        last_error = err
                        continue
                    except RemoteInvocationError as err:
                        remote = getattr(err, "remote_error", None)
                        router = self._shard_router
                        if (
                            refreshes_left > 0
                            and router is not None
                            and isinstance(remote, WrongPartitionError)
                            and remote.epoch > router.epoch
                        ):
                            # Cached map went stale (epoch bump): refetch
                            # from the replica that rejected us — it is
                            # demonstrably reachable — and re-route once.
                            refreshes_left -= 1
                            yield from self._refresh_shard_map(endpoint)
                            sweep = True
                            break
                        raise
        raise HostDownError(
            f"no nameserver replica reachable for {method!r}: {last_error}"
        )

    def _ns_endpoints_for(self, method: str, args: Sequence[Any]) -> List[str]:
        """Endpoints to sweep for one nameserver call.

        Name-routed methods consult the shard router (when installed);
        everything else — and the monolithic default — uses the full
        configured endpoint list.
        """
        if (
            self._shard_router is not None
            and method in NAME_ROUTED_METHODS
            and args
        ):
            return self._shard_router.endpoints_for(str(args[0]))
        return self._ns_endpoints

    def _refresh_shard_map(self, endpoint: str) -> Generator:
        """Refetch the shard map from ``endpoint`` and adopt it if newer."""
        assert self._shard_router is not None
        data = yield from self._fabric.invoke(
            self.host_id, endpoint, "nameserver", "get_shard_map"
        )
        adopted = self._shard_router.install(ShardMap.from_json_dict(data))
        if adopted:
            tel = instrument.TELEMETRY
            if tel is not None:
                tel.count("client_shard_map_refreshes_total")

    def _plan_with_retry(
        self,
        metadata: FileMetadata,
        replicas: Sequence[str],
        size_bytes: int,
        job_id: Optional[str],
    ) -> Generator:
        """Run the read planner; with a retry policy, survive transient
        planner/Flowserver outages by backing off and retrying."""
        from repro.rpc.errors import (
            HostDownError,
            RemoteInvocationError,
            RpcTimeout,
        )

        policy = self._retry
        attempts = policy.max_attempts if policy is not None else 1
        last_error: Optional[Exception] = None
        for attempt_index in range(attempts):
            if attempt_index > 0:
                self.read_retries += 1
                tel = instrument.TELEMETRY
                if tel is not None:
                    tel.count("client_read_retries_total")
                delay = policy.backoff(attempt_index - 1, self._retry_rng)
                if delay > 0:
                    yield Delay(delay)
            try:
                transfers = yield from self._planner.plan(
                    self.host_id, metadata, replicas, size_bytes, job_id=job_id
                )
                return transfers
            except (HostDownError, RpcTimeout, RemoteInvocationError) as err:
                if policy is None:
                    raise
                last_error = err
        raise HostDownError(f"read planner unreachable: {last_error}")

    def _metadata(self, name: str) -> Generator:
        entry = self._cache.get(name)
        if entry is not None and self._loop.now - entry.cached_at <= self.metadata_ttl:
            self.cache_hits += 1
            return entry.metadata
        self.cache_misses += 1
        metadata_dict = yield from self._invoke_nameserver("lookup", name)
        metadata = FileMetadata.from_json_dict(metadata_dict)
        self._remember(name, metadata)
        return metadata

    def _remember(self, name: str, metadata: FileMetadata) -> None:
        self._cache[name] = _CacheEntry(metadata=metadata, cached_at=self._loop.now)

    def _spawn_invoke(self, endpoint: str, service: str, method: str, *args: Any) -> Process:
        def body() -> Generator:
            return (
                yield from self._fabric.invoke(
                    self.host_id, endpoint, service, method, *args
                )
            )

        return Process(self._loop, body(), name=f"{service}.{method}@{endpoint}")

    def _spawn_read(
        self,
        metadata: FileMetadata,
        transfer: PlannedTransfer,
        file_offset: int,
        slot: int,
        chunks: Dict[int, Optional[bytes]],
        reply_sizes: List[int],
        job_id: Optional[str],
    ) -> Process:
        def attempt(
            replica: str,
            flow_id: str,
            path: Sequence[str],
            abs_offset: int,
            nbytes: int,
        ) -> Generator:
            reply = yield from self._fabric.invoke(
                self.host_id,
                replica,
                "dataserver",
                "serve_read",
                metadata.file_id,
                abs_offset,
                nbytes,
                self.host_id,
                flow_id,
                path,
                job_id,
            )
            return reply

        def body() -> Generator:
            from repro.fs.errors import OperationTimeoutError, ReplicaUnavailableError
            from repro.net.simulator import FlowAborted
            from repro.rpc.errors import (
                HostDownError,
                RemoteInvocationError,
                RpcTimeout,
            )

            policy = self._retry
            started = self._loop.now
            deadline = (
                started + policy.operation_deadline
                if policy is not None and policy.operation_deadline is not None
                else None
            )
            max_attempts = (
                policy.max_attempts if policy is not None else self.max_read_attempts
            )

            # Byte ranges still to fetch: (replica, flow_id, path, abs
            # offset, length).  A mid-transfer abort keeps the delivered
            # prefix and pushes back only the remainder — possibly
            # re-planned onto a different replica via the Flowserver.
            queue: List[Tuple[str, Optional[str], Optional[object], int, int]] = [
                (
                    transfer.replica,
                    transfer.flow_id,
                    transfer.path,
                    file_offset,
                    transfer.size_bytes,
                )
            ]
            parts: Dict[int, Optional[bytes]] = {}
            down_replicas: List[str] = []
            failures = 0
            last_error: Optional[Exception] = None
            last_reply = None

            while queue:
                replica, flow_id, path, abs_off, nbytes = queue.pop(0)
                if deadline is not None and self._loop.now > deadline:
                    raise OperationTimeoutError(
                        f"read of {metadata.name!r} range {file_offset}+"
                        f"{transfer.size_bytes} exceeded its "
                        f"{policy.operation_deadline:.6g}s deadline: {last_error}"
                    )
                try:
                    reply = yield from attempt(replica, flow_id, path, abs_off, nbytes)
                except (HostDownError, RpcTimeout, RemoteInvocationError) as err:
                    aborted: Optional[FlowAborted] = None
                    if isinstance(err, RemoteInvocationError):
                        if isinstance(err.remote_error, FlowAborted):
                            aborted = err.remote_error
                        else:
                            # Remote logic errors (bad range, missing file)
                            # are not transient — retrying cannot help.
                            raise
                    failures += 1
                    last_error = err
                    if isinstance(err, (HostDownError, RpcTimeout)):
                        if replica not in down_replicas:
                            down_replicas.append(replica)

                    remaining_off, remaining_len = abs_off, nbytes
                    if aborted is not None:
                        delivered = min(int(aborted.bytes_delivered), nbytes)
                        if delivered > 0:
                            parts[abs_off] = (
                                aborted.data[:delivered]
                                if aborted.data is not None
                                else None
                            )
                            remaining_off += delivered
                            remaining_len -= delivered
                            self.read_resumptions += 1
                            self.bytes_resumed += delivered
                            tel = instrument.TELEMETRY
                            if tel is not None:
                                tel.instant(
                                    self._loop.now, "client.read.resume",
                                    "read", file=metadata.name,
                                    replica=replica, bytes=delivered,
                                )
                                tel.count("client_read_resumptions_total")
                                tel.metrics.counter(
                                    "client_bytes_resumed_total"
                                ).inc(float(delivered))

                    candidates = [
                        r for r in metadata.replicas if r not in down_replicas
                    ]
                    if remaining_len <= 0:
                        continue
                    if failures >= max_attempts or (
                        not candidates and policy is None
                    ):
                        raise ReplicaUnavailableError(
                            f"read of {metadata.name!r} range {file_offset}+"
                            f"{transfer.size_bytes} failed after {failures} "
                            f"attempt(s), replicas down {down_replicas}: "
                            f"{last_error}"
                        )
                    if not candidates:
                        # Every replica has failed at least once, but a
                        # timed outage may since have healed; forgive the
                        # blacklist and re-probe after backoff (the
                        # failure budget still bounds total attempts).
                        down_replicas.clear()
                        candidates = list(metadata.replicas)
                    tel = instrument.TELEMETRY
                    if replica in down_replicas:
                        self.read_failovers += 1
                        if tel is not None:
                            tel.instant(
                                self._loop.now, "client.read.failover",
                                "read", file=metadata.name, replica=replica,
                            )
                            tel.count("client_read_failovers_total")
                    self.read_retries += 1
                    if tel is not None:
                        tel.count("client_read_retries_total")
                    if policy is not None:
                        delay = policy.backoff(failures - 1, self._retry_rng)
                        if delay > 0:
                            yield Delay(delay)
                    requeue = yield from self._replan_range(
                        metadata, candidates, replica, remaining_off,
                        remaining_len, job_id,
                    )
                    queue[:0] = requeue
                    continue
                parts[abs_off] = reply.data
                reply_sizes.append(reply.file_size)
                last_reply = reply

            data = None
            if parts and all(v is not None for v in parts.values()):
                data = b"".join(parts[k] for k in sorted(parts))
            chunks[slot] = data
            return last_reply

        return Process(self._loop, body(), name=f"read:{metadata.name}:{slot}")

    def _replan_range(
        self,
        metadata: FileMetadata,
        candidates: List[str],
        failed_replica: str,
        offset: int,
        length: int,
        job_id: Optional[str],
    ) -> Generator:
        """Plan the retry of a byte range after a failure.

        Asks the planner (the Flowserver, for Mayflower) to place the
        remaining bytes across the surviving replicas; if the planner is
        itself unreachable or returns a bad cover, falls back to a direct
        ECMP-routed read from the first healthy replica.
        """
        from repro.rpc.errors import HostDownError, RemoteInvocationError, RpcTimeout

        transfers = None
        try:
            planned = yield from self._planner.plan(
                self.host_id, metadata, candidates, length, job_id=job_id
            )
            if planned and sum(t.size_bytes for t in planned) == length:
                transfers = planned
        except (HostDownError, RpcTimeout, RemoteInvocationError):
            transfers = None
        if transfers is None:
            fallback = (
                candidates[0] if failed_replica not in candidates else failed_replica
            )
            return [(fallback, None, None, offset, length)]
        requeue = []
        cursor = offset
        for planned_transfer in transfers:
            requeue.append(
                (
                    planned_transfer.replica,
                    planned_transfer.flow_id,
                    planned_transfer.path,
                    cursor,
                    planned_transfer.size_bytes,
                )
            )
            cursor += planned_transfer.size_bytes
        return requeue

"""The Mayflower client library (§5).

Provides an HDFS-like interface — create, read, append (write), delete —
implemented as cooperative processes over the RPC fabric.  During reads the
client consults a :class:`ReadPlanner` (normally the Flowserver, §3.3) to
pick replica(s) and path(s), then asks the chosen dataserver(s) to stream
the data.  File metadata is cached client-side: append-only semantics make
the chunk map safe to cache, and each read reply carries the file's current
size so appended tails are discovered without another nameserver round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from repro.fs.chunks import DEFAULT_CHUNK_BYTES, DEFAULT_REPLICATION, FileMetadata
from repro.fs.consistency import ConsistencyMode, replica_candidates_for_range
from repro.fs.errors import InvalidRequestError
from repro.sim.engine import EventLoop
from repro.sim.process import Process


@dataclass(frozen=True)
class PlannedTransfer:
    """One transfer a read planner decided on."""

    replica: str
    size_bytes: int
    flow_id: Optional[str] = None
    path: Optional[object] = None  # repro.net.routing.Path when pre-routed


class ReadPlanner:
    """Strategy choosing replica(s) for a read.

    ``plan`` is a generator (it may issue RPCs, e.g. to the Flowserver)
    returning a list of :class:`PlannedTransfer` that together cover
    ``size_bytes``.
    """

    def plan(
        self,
        client_host: str,
        metadata: FileMetadata,
        replicas: Sequence[str],
        size_bytes: int,
        job_id: Optional[str] = None,
    ) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a client read."""

    name: str
    offset: int
    length: int
    duration: float
    transfers: Sequence[PlannedTransfer]
    file_size: int
    data: Optional[bytes]


@dataclass
class _CacheEntry:
    metadata: FileMetadata
    cached_at: float


class MayflowerClient:
    """Filesystem client bound to one host.

    Parameters
    ----------
    host_id:
        The topology host this client runs on.
    fabric:
        RPC fabric shared with the servers.
    nameserver_endpoint:
        Where the nameserver service lives.
    planner:
        Read planning strategy (Flowserver-backed for Mayflower, or one of
        the baseline planners).
    consistency:
        Read consistency mode (§3.4).
    metadata_ttl:
        Seconds a cached file→dataservers mapping stays fresh; the paper
        ties this to replica-migration / failure timescales.
    """

    def __init__(
        self,
        host_id: str,
        loop: EventLoop,
        fabric,
        nameserver_endpoint: str,
        planner: ReadPlanner,
        consistency: ConsistencyMode = ConsistencyMode.SEQUENTIAL,
        metadata_ttl: float = 60.0,
        max_read_attempts: int = 3,
    ):
        self.host_id = host_id
        self._loop = loop
        self._fabric = fabric
        # One endpoint for the paper's centralized nameserver, or several
        # for a replicated deployment (§3.3.1); calls fail over in order.
        if isinstance(nameserver_endpoint, str):
            self._ns_endpoints = [nameserver_endpoint]
        else:
            self._ns_endpoints = list(nameserver_endpoint)
        if not self._ns_endpoints:
            raise ValueError("at least one nameserver endpoint is required")
        self._planner = planner
        self.consistency = consistency
        self.metadata_ttl = metadata_ttl
        self.max_read_attempts = max(1, max_read_attempts)
        self._cache: Dict[str, _CacheEntry] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.read_failovers = 0

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------

    def create(
        self,
        name: str,
        replication: int = DEFAULT_REPLICATION,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> Generator:
        """Create a file; registers the replica set on every dataserver."""
        metadata_dict = yield from self._invoke_nameserver(
            "create", name, replication, chunk_bytes, self.host_id
        )
        metadata = FileMetadata.from_json_dict(metadata_dict)
        creates = [
            self._spawn_invoke(replica, "dataserver", "create_file", metadata_dict)
            for replica in metadata.replicas
        ]
        for proc in creates:
            yield proc
        self._remember(name, metadata)
        return metadata

    def delete(self, name: str) -> Generator:
        """Delete a file from the namespace and reclaim replicas."""
        metadata_dict = yield from self._invoke_nameserver("delete", name)
        metadata = FileMetadata.from_json_dict(metadata_dict)
        self._cache.pop(name, None)
        deletes = [
            self._spawn_invoke(replica, "dataserver", "delete_file", metadata.file_id)
            for replica in metadata.replicas
        ]
        for proc in deletes:
            yield proc
        return metadata

    def move(self, src_name: str, dst_name: str) -> Generator:
        """Rename a file, replacing any existing destination (§3.3).

        The random-write workflow: write a fresh copy under a temporary
        name, then ``move`` it over the original — readers see either the
        whole old file or the whole new one, never a mix.
        """
        result = yield from self._invoke_nameserver("move", src_name, dst_name)
        moved = FileMetadata.from_json_dict(result["moved"])
        replaced = (
            FileMetadata.from_json_dict(result["replaced"])
            if result["replaced"]
            else None
        )
        cleanups = []
        if replaced is not None:
            cleanups.extend(
                self._spawn_invoke(r, "dataserver", "delete_file", replaced.file_id)
                for r in replaced.replicas
            )
        cleanups.extend(
            self._spawn_invoke(r, "dataserver", "rename_file", moved.file_id, dst_name)
            for r in moved.replicas
        )
        for proc in cleanups:
            yield proc
        self._cache.pop(src_name, None)
        self._remember(dst_name, moved)
        return moved

    def stat(self, name: str) -> Generator:
        """Fresh metadata straight from the nameserver (bypasses the cache)."""
        metadata_dict = yield from self._invoke_nameserver("lookup", name)
        metadata = FileMetadata.from_json_dict(metadata_dict)
        self._remember(name, metadata)
        return metadata

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------

    def append(
        self, name: str, size_bytes: int, data: Optional[bytes] = None,
        job_id: Optional[str] = None,
    ) -> Generator:
        """Append to a file through its primary replica; returns new size."""
        if size_bytes <= 0:
            raise InvalidRequestError(f"append size must be positive: {size_bytes}")
        metadata = yield from self._metadata(name)
        new_size = yield from self._fabric.invoke(
            self.host_id,
            metadata.primary,
            "dataserver",
            "append",
            metadata.file_id,
            size_bytes,
            self.host_id,
            data,
            job_id,
        )
        self._remember(name, metadata.with_size(new_size))
        return new_size

    def read(
        self,
        name: str,
        offset: int = 0,
        length: Optional[int] = None,
        job_id: Optional[str] = None,
    ) -> Generator:
        """Read ``length`` bytes at ``offset`` (defaults to the whole file).

        Consults the planner per consistency sub-range, fans the transfers
        out in parallel, and completes when the slowest transfer finishes
        (the job completion time the paper measures).
        """
        started = self._loop.now
        metadata = yield from self._metadata(name)
        if length is None:
            length = metadata.size_bytes - offset
        if length <= 0 or offset < 0 or offset + length > metadata.size_bytes:
            raise InvalidRequestError(
                f"invalid read range {offset}+{length} of {name!r} "
                f"(size {metadata.size_bytes})"
            )

        subranges = replica_candidates_for_range(
            metadata, offset, length, self.consistency
        )
        all_transfers: List[PlannedTransfer] = []
        readers: List[Process] = []
        chunks: Dict[int, Optional[bytes]] = {}
        reply_sizes: List[int] = []

        slot = 0
        for sub_offset, sub_length, replicas in subranges:
            transfers = yield from self._planner.plan(
                self.host_id, metadata, replicas, sub_length, job_id=job_id
            )
            covered = sum(t.size_bytes for t in transfers)
            if covered != sub_length:
                raise InvalidRequestError(
                    f"planner covered {covered} of {sub_length} bytes"
                )
            cursor = sub_offset
            for transfer in transfers:
                all_transfers.append(transfer)
                readers.append(
                    self._spawn_read(
                        metadata, transfer, cursor, slot, chunks, reply_sizes, job_id
                    )
                )
                cursor += transfer.size_bytes
                slot += 1

        for proc in readers:
            yield proc

        data = None
        if chunks and all(v is not None for v in chunks.values()):
            data = b"".join(chunks[i] for i in sorted(chunks))
        file_size = max(reply_sizes) if reply_sizes else metadata.size_bytes
        if file_size != metadata.size_bytes:
            # A concurrent append grew the file; refresh the cached size.
            self._remember(name, metadata.with_size(file_size))
        return ReadResult(
            name=name,
            offset=offset,
            length=length,
            duration=self._loop.now - started,
            transfers=tuple(all_transfers),
            file_size=file_size,
            data=data,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _invoke_nameserver(self, method: str, *args) -> Generator:
        """Call the nameserver, failing over across replica endpoints.

        Both whole-host failures (HostDown) and crashed nameserver
        processes (ServiceNotFound) trigger the failover.
        """
        from repro.rpc.errors import HostDownError, ServiceNotFoundError

        last_error: Optional[Exception] = None
        for endpoint in self._ns_endpoints:
            try:
                result = yield from self._fabric.invoke(
                    self.host_id, endpoint, "nameserver", method, *args
                )
                return result
            except (HostDownError, ServiceNotFoundError) as err:
                last_error = err
                continue
        raise HostDownError(
            f"no nameserver replica reachable for {method!r}: {last_error}"
        )

    def _metadata(self, name: str) -> Generator:
        entry = self._cache.get(name)
        if entry is not None and self._loop.now - entry.cached_at <= self.metadata_ttl:
            self.cache_hits += 1
            return entry.metadata
        self.cache_misses += 1
        metadata_dict = yield from self._invoke_nameserver("lookup", name)
        metadata = FileMetadata.from_json_dict(metadata_dict)
        self._remember(name, metadata)
        return metadata

    def _remember(self, name: str, metadata: FileMetadata) -> None:
        self._cache[name] = _CacheEntry(metadata=metadata, cached_at=self._loop.now)

    def _spawn_invoke(self, endpoint: str, service: str, method: str, *args) -> Process:
        def body():
            return (
                yield from self._fabric.invoke(
                    self.host_id, endpoint, service, method, *args
                )
            )

        return Process(self._loop, body(), name=f"{service}.{method}@{endpoint}")

    def _spawn_read(
        self,
        metadata: FileMetadata,
        transfer: PlannedTransfer,
        file_offset: int,
        slot: int,
        chunks: Dict[int, Optional[bytes]],
        reply_sizes: List[int],
        job_id: Optional[str],
    ) -> Process:
        def attempt(replica, flow_id, path):
            reply = yield from self._fabric.invoke(
                self.host_id,
                replica,
                "dataserver",
                "serve_read",
                metadata.file_id,
                file_offset,
                transfer.size_bytes,
                self.host_id,
                flow_id,
                path,
                job_id,
            )
            return reply

        def body():
            from repro.rpc.errors import HostDownError

            tried = []
            last_error: Optional[Exception] = None
            replica, flow_id, path = transfer.replica, transfer.flow_id, transfer.path
            for attempt_index in range(self.max_read_attempts):
                try:
                    reply = yield from attempt(replica, flow_id, path)
                except HostDownError as err:
                    # Failover: retry the same range from another replica;
                    # the pre-arranged flow/path died with the host, so the
                    # data plane re-routes (ECMP) on the retry.
                    tried.append(replica)
                    last_error = err
                    alternatives = [
                        r for r in metadata.replicas if r not in tried
                    ]
                    if not alternatives or attempt_index + 1 >= self.max_read_attempts:
                        break
                    replica, flow_id, path = alternatives[0], None, None
                    self.read_failovers += 1
                    continue
                chunks[slot] = reply.data
                reply_sizes.append(reply.file_size)
                return reply
            from repro.fs.errors import ReplicaUnavailableError

            raise ReplicaUnavailableError(
                f"read of {metadata.name!r} range {file_offset}+"
                f"{transfer.size_bytes} failed on replicas {tried}: {last_error}"
            )

        return Process(self._loop, body(), name=f"read:{metadata.name}:{slot}")

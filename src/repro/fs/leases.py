"""Primary leases with epochs: the write pipeline's fencing substrate.

The nameserver stays authoritative over *who may order appends* for each
file (the MetaFlow lesson: metadata authority must be centralized even
when the data path is co-designed with the network).  A
:class:`LeaseManager` co-located with the nameserver grants time-bounded
**primary leases** on the simulated clock; every grant carries an
**epoch** number that increases whenever primaryship can have moved —
expiry, revocation, or explicit promotion by the replica manager.

Fencing is two-sided:

* **dataserver-side** — a primary whose locally-held lease lapsed must
  re-acquire before committing; if the manager refuses (someone else
  holds the lease) the append is rejected with
  :class:`~repro.fs.errors.LeaseExpiredError` and never commits;
* **nameserver-side** — every committed append reports its epoch via
  ``record_append``; a mismatch against the manager's current epoch
  raises :class:`~repro.fs.errors.StaleEpochError`, so a primary that
  committed on stale authority can never make its bytes authoritative
  (and never acks the client).

Renewal rides the existing heartbeat path: the membership tracker calls
:meth:`LeaseManager.renew_for_host` on every heartbeat, extending the
manager-side expiry of all leases that host holds.  A dead primary stops
beating, its leases run out, and the next acquirer — normally the
survivor the replica manager promoted — gets a fresh epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.fs.errors import LeaseExpiredError, StaleEpochError
from repro.sim import instrument
from repro.sim.engine import EventLoop

#: RPC service name under which the :class:`LeaseManager` is registered
#: (co-located with the nameserver endpoint).
LEASE_SERVICE = "leases"

#: Default lease term in simulated seconds.  Chosen to sit comfortably
#: above the default heartbeat interval (5 s) so a healthy primary never
#: loses its lease between beats, yet well below re-replication
#: timescales so failover is not gated on lease expiry.
DEFAULT_LEASE_DURATION = 30.0


@dataclass(frozen=True)
class LeaseGrant:
    """One granted (or renewed) primary lease, in wire-friendly form."""

    file_id: str
    holder: str
    epoch: int
    expires_at: float

    def valid_at(self, now: float) -> bool:
        return now < self.expires_at

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "file_id": self.file_id,
            "holder": self.holder,
            "epoch": self.epoch,
            "expires_at": self.expires_at,
        }

    @classmethod
    def from_json_dict(cls, obj: Dict[str, object]) -> "LeaseGrant":
        return cls(
            file_id=str(obj["file_id"]),
            holder=str(obj["holder"]),
            epoch=int(obj["epoch"]),  # type: ignore[call-overload]
            expires_at=float(obj["expires_at"]),  # type: ignore[arg-type]
        )


class LeaseManager:
    """Grants, renews, revokes and validates primary leases.

    Registered as the ``"leases"`` RPC service at the nameserver
    endpoint; also reachable in-process by the nameserver (epoch
    validation on ``record_append``) and the replica manager (promotion).
    All expiry decisions read the shared simulated clock, so lease
    timelines are deterministic per seed.
    """

    def __init__(
        self, loop: EventLoop, duration: float = DEFAULT_LEASE_DURATION
    ) -> None:
        if duration <= 0:
            raise ValueError(f"lease duration must be positive, got {duration}")
        self._loop = loop
        self.duration = duration
        self._leases: Dict[str, LeaseGrant] = {}
        self.grants = 0
        self.renewals = 0
        self.promotions = 0
        self.transfers = 0
        self.expirations = 0
        self.rejections = 0
        self.fencing_rejections = 0

    # ------------------------------------------------------------------
    # RPC surface (dataserver-facing)
    # ------------------------------------------------------------------

    def acquire(self, file_id: str, host: str) -> Dict[str, object]:
        """Acquire (or refresh) the primary lease on ``file_id``.

        Grant rules, evaluated at the current simulated time:

        * no lease, or the existing lease expired → grant to ``host``
          with a **bumped epoch** (primaryship may have moved while no
          lease was live, so the epoch must not be reusable);
        * ``host`` already holds a live lease → renew it, same epoch;
        * another host holds a live lease → reject with
          :class:`LeaseExpiredError` (the caller is fenced out).

        Returns the grant as a JSON dict (the RPC wire format).
        """
        now = self._loop.now
        current = self._leases.get(file_id)
        if current is not None and current.valid_at(now):
            if current.holder != host:
                self.rejections += 1
                self._count("lease_rejections_total")
                raise LeaseExpiredError(
                    f"lease on {file_id!r} held by {current.holder!r} "
                    f"(epoch {current.epoch}) until t={current.expires_at:.6g}; "
                    f"{host!r} is fenced out"
                )
            grant = replace(current, expires_at=now + self.duration)
            self._leases[file_id] = grant
            self.renewals += 1
            self._count("lease_renewals_total")
            return grant.to_json_dict()
        epoch = (current.epoch if current is not None else 0) + 1
        grant = LeaseGrant(
            file_id=file_id, holder=host, epoch=epoch,
            expires_at=now + self.duration,
        )
        self._leases[file_id] = grant
        self.grants += 1
        self._count("lease_grants_total")
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(now, "lease.grant", "lease",
                        file_id=file_id, holder=host, epoch=epoch)
        return grant.to_json_dict()

    def release(self, file_id: str, host: str) -> bool:
        """Voluntarily give up a lease (graceful primary handoff)."""
        current = self._leases.get(file_id)
        if current is None or current.holder != host:
            return False
        self._leases[file_id] = replace(current, expires_at=self._loop.now)
        return True

    # ------------------------------------------------------------------
    # Heartbeat renewal + failover hooks
    # ------------------------------------------------------------------

    def renew_for_host(self, host: str) -> int:
        """Extend every live lease ``host`` holds (heartbeat piggyback)."""
        now = self._loop.now
        renewed = 0
        for file_id, grant in self._leases.items():
            if grant.holder == host and grant.valid_at(now):
                self._leases[file_id] = replace(
                    grant, expires_at=now + self.duration
                )
                renewed += 1
        if renewed:
            self.renewals += renewed
            self._count("lease_renewals_total", float(renewed))
        return renewed

    def promote(self, file_id: str, new_primary: str) -> Dict[str, object]:
        """Force primaryship to ``new_primary`` with a bumped epoch.

        Called by the replica manager after it rewrote a damaged file's
        replica set.  The old holder's lease (live or not) is superseded:
        its epoch is now stale and both fencing sides will reject it.
        """
        current = self._leases.get(file_id)
        epoch = (current.epoch if current is not None else 0) + 1
        grant = LeaseGrant(
            file_id=file_id, holder=new_primary, epoch=epoch,
            expires_at=self._loop.now + self.duration,
        )
        self._leases[file_id] = grant
        self.promotions += 1
        self._count("lease_promotions_total")
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(self._loop.now, "lease.promote", "lease",
                        file_id=file_id, holder=new_primary, epoch=epoch)
        return grant.to_json_dict()

    def transfer(
        self, file_id: str, from_host: str, to_host: str
    ) -> Dict[str, object]:
        """Hand the lease from ``from_host`` to ``to_host`` (epoch + 1).

        The graceful-drain handoff: a primary being decommissioned moves
        its authority to a chosen secondary *immediately* instead of
        letting the lease run out (which would reject every append for
        up to a full lease term).  ``from_host`` must be the recorded
        holder — lapsed is fine, that just means nobody re-acquired —
        otherwise the transfer is refused so a stale drain cannot steal
        a lease someone else legitimately claimed in between.
        """
        current = self._leases.get(file_id)
        if current is not None and current.holder != from_host:
            self.rejections += 1
            self._count("lease_rejections_total")
            raise LeaseExpiredError(
                f"transfer of {file_id!r} refused: held by "
                f"{current.holder!r} (epoch {current.epoch}), "
                f"not {from_host!r}"
            )
        epoch = (current.epoch if current is not None else 0) + 1
        grant = LeaseGrant(
            file_id=file_id, holder=to_host, epoch=epoch,
            expires_at=self._loop.now + self.duration,
        )
        self._leases[file_id] = grant
        self.transfers += 1
        self._count("lease_transfers_total")
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.instant(self._loop.now, "lease.transfer", "lease",
                        file_id=file_id, holder=to_host,
                        from_host=from_host, epoch=epoch)
        return grant.to_json_dict()

    def expire_host(self, host: str) -> int:
        """Immediately void every lease ``host`` holds (fault injection).

        The lease records stay (with their epoch) so the next acquire —
        by anyone, including the old holder — bumps past them.
        """
        now = self._loop.now
        expired = 0
        for file_id, grant in self._leases.items():
            if grant.holder == host and grant.valid_at(now):
                self._leases[file_id] = replace(grant, expires_at=now)
                expired += 1
        if expired:
            self.expirations += expired
            self._count("lease_expirations_total", float(expired))
            tel = instrument.TELEMETRY
            if tel is not None:
                tel.instant(now, "lease.expire_host", "lease",
                            host=host, leases=expired)
        return expired

    # ------------------------------------------------------------------
    # Fencing (nameserver-facing)
    # ------------------------------------------------------------------

    def validate(self, file_id: str, host: str, epoch: int) -> None:
        """Reject a commit report whose epoch is not current.

        Raises :class:`StaleEpochError` when the reported epoch trails
        the lease's, or when the lease moved to another holder.  A report
        for a file with no lease record is rejected too: with leasing
        armed, every epoch-stamped commit must trace to a grant.
        """
        current = self._leases.get(file_id)
        if current is None or epoch < current.epoch or current.holder != host:
            self.fencing_rejections += 1
            self._count("lease_fencing_rejections_total")
            tel = instrument.TELEMETRY
            if tel is not None:
                tel.instant(self._loop.now, "lease.fence", "lease",
                            file_id=file_id, host=host, epoch=epoch,
                            current_epoch=(
                                current.epoch if current is not None else 0
                            ))
            held = (
                f"current epoch {current.epoch} held by {current.holder!r}"
                if current is not None
                else "no lease on record"
            )
            raise StaleEpochError(
                f"commit on {file_id!r} by {host!r} at epoch {epoch} "
                f"rejected: {held}"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def current(self, file_id: str) -> Optional[LeaseGrant]:
        return self._leases.get(file_id)

    def current_epoch(self, file_id: str) -> int:
        grant = self._leases.get(file_id)
        return grant.epoch if grant is not None else 0

    def lease_count(self) -> int:
        return len(self._leases)

    def _count(self, name: str, amount: float = 1.0) -> None:
        tel = instrument.TELEMETRY
        if tel is not None:
            tel.count(name, amount)


class HeldLeaseTable:
    """Dataserver-side cache of the leases this host was granted.

    The primary's fast path: committing an append only needs a local
    check against the simulated clock.  The grant's *absolute* expiry
    time is authoritative (one global sim clock), so a locally-valid
    lease is always at least as conservative as the manager's view minus
    heartbeat renewals — when the local copy lapses the dataserver
    re-acquires over RPC, which either refreshes it (still the holder)
    or fences it out.
    """

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._held: Dict[str, LeaseGrant] = {}

    def install(self, grant: LeaseGrant) -> None:
        self._held[grant.file_id] = grant

    def valid(self, file_id: str) -> Optional[LeaseGrant]:
        """The live local grant for ``file_id``, or ``None`` if lapsed."""
        grant = self._held.get(file_id)
        if grant is None or not grant.valid_at(self._loop.now):
            return None
        return grant

    def epoch(self, file_id: str) -> int:
        grant = self._held.get(file_id)
        return grant.epoch if grant is not None else 0

    def drop(self, file_id: str) -> None:
        self._held.pop(file_id, None)

    def revoke_all(self) -> int:
        """Forget every cached grant (lease-revocation fault delivery).

        Epoch memory is not lost — each file's high-water epoch also
        lives on the dataserver's stored-file record — but the next
        commit must re-acquire from the manager, observing whatever
        epoch bump the revocation caused.
        """
        revoked = len(self._held)
        self._held.clear()
        return revoked

"""Client-side retry policy: exponential backoff with jitter + deadlines.

Retries are how the client survives the fault classes the injection
subsystem (:mod:`repro.faults`) produces — downed dataservers, failed
links aborting transfers mid-flight, control-plane timeouts.  The policy
is deliberately inert when nothing fails: no delay is drawn and no RNG
state is consumed on the success path, which keeps fault-free runs
bit-identical to a client with no policy at all.
"""

from __future__ import annotations

from random import Random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How a client paces retries of a failed operation.

    Parameters
    ----------
    max_attempts:
        Total tries per operation (first attempt included).
    base_delay:
        Backoff before the first retry, in simulated seconds.
    multiplier:
        Exponential growth factor between consecutive retries.
    max_delay:
        Ceiling on a single backoff interval.
    jitter:
        Fraction of each interval randomized (0 = deterministic,
        1 = "full jitter").  The delay for retry ``n`` is drawn from
        ``[d*(1-jitter), d]`` where ``d = min(max_delay, base*mult**n)``.
    operation_deadline:
        Overall budget for one logical operation (all attempts plus
        backoff), in simulated seconds; ``None`` disables it.
    rpc_timeout:
        Per-call deadline applied to *control-plane* RPCs (nameserver
        lookups, planner requests); ``None`` disables it.  Bulk data
        transfers are never bounded by this — their failure signal is
        :class:`~repro.net.simulator.FlowAborted`.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    operation_deadline: Optional[float] = None
    rpc_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff(self, retry_index: int, rng: Optional[Random] = None) -> float:
        """Delay before retry ``retry_index`` (0 = first retry)."""
        if retry_index < 0:
            raise ValueError(f"retry_index must be >= 0, got {retry_index}")
        raw = min(self.max_delay, self.base_delay * self.multiplier**retry_index)
        if raw <= 0 or self.jitter <= 0 or rng is None:
            return raw
        return raw * (1.0 - self.jitter * rng.random())


#: Immediate-failover policy matching the historical client behaviour:
#: no backoff, no deadlines, three attempts.
LEGACY_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.0, multiplier=1.0, max_delay=0.0, jitter=0.0
)

"""The RPC fabric: endpoint registry, dispatch, latency and failures.

Endpoints are string names.  Topology hosts are natural endpoints, but the
fabric also accepts *virtual* endpoints (e.g. ``"@controller"``) for
services that live out-of-band on the management network, which is how the
paper's clients reach the Flowserver inside Floodlight.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Set, Tuple

from repro.rpc.errors import (
    HostDownError,
    RemoteInvocationError,
    ServiceNotFoundError,
)
from repro.sim.engine import EventLoop
from repro.sim.process import Process, Signal


@dataclass(frozen=True)
class RpcResponse:
    """Envelope delivered to the caller's completion signal."""

    ok: bool
    value: Any = None
    error: Optional[str] = None
    error_type: Optional[type] = None


class RpcFabric:
    """Latency-modelled request/response messaging on the event loop.

    Parameters
    ----------
    loop:
        Simulated clock.
    latency:
        One-way control-message latency in seconds (default 0.5 ms, a
        typical intra-datacenter RTT/2 for small RPCs).
    """

    def __init__(
        self,
        loop: EventLoop,
        latency: float = 0.0005,
        jitter: float = 0.0,
        seed: int = 0,
    ):
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self._loop = loop
        self.latency = latency
        #: Uniform extra delay in [0, jitter] added per message, drawn from
        #: a seeded stream so runs stay reproducible.
        self.jitter = jitter
        import random as _random

        self._jitter_rng = _random.Random(seed ^ 0x52504A)
        self._services: Dict[Tuple[str, str], Any] = {}
        self._down: Set[str] = set()
        self.calls_sent = 0
        self.calls_failed = 0

    def _one_way_delay(self) -> float:
        if self.jitter <= 0:
            return self.latency
        return self.latency + self._jitter_rng.uniform(0, self.jitter)

    # ------------------------------------------------------------------
    # Registration and failure injection
    # ------------------------------------------------------------------

    def register(self, endpoint: str, service: str, handler: Any) -> None:
        """Expose ``handler``'s public methods as ``service`` at ``endpoint``."""
        key = (endpoint, service)
        if key in self._services:
            raise ValueError(f"service {service!r} already registered at {endpoint!r}")
        self._services[key] = handler

    def unregister(self, endpoint: str, service: str) -> None:
        self._services.pop((endpoint, service), None)

    def set_down(self, endpoint: str, down: bool = True) -> None:
        """Mark an endpoint unreachable (calls fail with HostDownError)."""
        if down:
            self._down.add(endpoint)
        else:
            self._down.discard(endpoint)

    def is_down(self, endpoint: str) -> bool:
        return endpoint in self._down

    # ------------------------------------------------------------------
    # Calling
    # ------------------------------------------------------------------

    def call(
        self,
        src: str,
        dst: str,
        service: str,
        method: str,
        *args: Any,
        **kwargs: Any,
    ) -> Signal:
        """Send a request; returns a signal fired with an :class:`RpcResponse`.

        The request arrives after one latency; the handler runs (possibly
        suspending, if it is a generator); the response arrives after
        another latency.
        """
        self.calls_sent += 1
        done = Signal(self._loop, name=f"rpc:{service}.{method}")

        def _respond(response: RpcResponse) -> None:
            if not response.ok:
                self.calls_failed += 1
            self._loop.call_in(self._one_way_delay(), done.fire, response)

        def _deliver() -> None:
            if dst in self._down or src in self._down:
                _respond(
                    RpcResponse(
                        ok=False,
                        error=f"endpoint {dst if dst in self._down else src} is down",
                        error_type=HostDownError,
                    )
                )
                return
            handler = self._services.get((dst, service))
            if handler is None:
                _respond(
                    RpcResponse(
                        ok=False,
                        error=f"no service {service!r} at {dst!r}",
                        error_type=ServiceNotFoundError,
                    )
                )
                return
            bound = getattr(handler, method, None)
            if bound is None or method.startswith("_") or not callable(bound):
                _respond(
                    RpcResponse(
                        ok=False,
                        error=f"service {service!r} has no method {method!r}",
                        error_type=ServiceNotFoundError,
                    )
                )
                return
            try:
                result = bound(*args, **kwargs)
            except Exception as err:  # noqa: BLE001 - shipped to caller
                _respond(
                    RpcResponse(
                        ok=False, error=str(err), error_type=RemoteInvocationError
                    )
                )
                return
            if inspect.isgenerator(result):
                proc = Process(self._loop, result, name=f"{service}.{method}")

                def _on_done(_payload: Any) -> None:
                    if proc.exception is not None:
                        _respond(
                            RpcResponse(
                                ok=False,
                                error=str(proc.exception),
                                error_type=RemoteInvocationError,
                            )
                        )
                    else:
                        _respond(RpcResponse(ok=True, value=proc.result))

                proc.done_signal.add_waiter(_on_done)
            else:
                _respond(RpcResponse(ok=True, value=result))

        self._loop.call_in(self._one_way_delay(), _deliver)
        return done

    def invoke(
        self,
        src: str,
        dst: str,
        service: str,
        method: str,
        *args: Any,
        **kwargs: Any,
    ) -> Generator:
        """Process-friendly call: ``result = yield from fabric.invoke(...)``.

        Raises the appropriate :class:`~repro.rpc.errors.RpcError` subclass
        inside the calling process when the call fails.
        """
        response = yield self.call(src, dst, service, method, *args, **kwargs)
        if response.ok:
            return response.value
        error_type = response.error_type or RemoteInvocationError
        if error_type is RemoteInvocationError:
            raise RemoteInvocationError(service, method, response.error or "")
        raise error_type(response.error)

"""The RPC fabric: endpoint registry, dispatch, latency and failures.

Endpoints are string names.  Topology hosts are natural endpoints, but the
fabric also accepts *virtual* endpoints (e.g. ``"@controller"``) for
services that live out-of-band on the management network, which is how the
paper's clients reach the Flowserver inside Floodlight.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Set, Tuple

from repro.rpc.errors import (
    HostDownError,
    RemoteInvocationError,
    RpcTimeout,
    ServiceNotFoundError,
)
from repro.sim import instrument
from repro.sim.engine import EventLoop
from repro.sim.process import Process, Signal
from repro.sim.randomness import seeded_rng


@dataclass(frozen=True)
class RpcResponse:
    """Envelope delivered to the caller's completion signal.

    ``remote_error`` carries the original exception object when the remote
    handler raised — the fabric is in-process, so typed payloads (e.g.
    :class:`~repro.net.simulator.FlowAborted` resumption state) survive
    the round trip.
    """

    ok: bool
    value: Any = None
    error: Optional[str] = None
    error_type: Optional[type] = None
    remote_error: Optional[BaseException] = None


class RpcFabric:
    """Latency-modelled request/response messaging on the event loop.

    Parameters
    ----------
    loop:
        Simulated clock.
    latency:
        One-way control-message latency in seconds (default 0.5 ms, a
        typical intra-datacenter RTT/2 for small RPCs).
    """

    def __init__(
        self,
        loop: EventLoop,
        latency: float = 0.0005,
        jitter: float = 0.0,
        seed: int = 0,
    ):
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self._loop = loop
        self.latency = latency
        #: Uniform extra delay in [0, jitter] added per message, drawn from
        #: a seeded stream so runs stay reproducible.
        self.jitter = jitter
        self._jitter_rng = seeded_rng(seed ^ 0x52504A)
        self._services: Dict[Tuple[str, str], Any] = {}
        self._down: Set[str] = set()
        self._partitions: Set[frozenset] = set()
        #: Multiplier on control-message latency (fault injection: an
        #: ``rpc_delay_spike`` raises it temporarily; 1.0 = nominal).
        self.delay_factor = 1.0
        self.calls_sent = 0
        self.calls_failed = 0
        self.calls_timed_out = 0

    def _one_way_delay(self) -> float:
        if self.jitter <= 0:
            return self.latency * self.delay_factor
        return (self.latency + self._jitter_rng.uniform(0, self.jitter)) * self.delay_factor

    # ------------------------------------------------------------------
    # Registration and failure injection
    # ------------------------------------------------------------------

    def register(self, endpoint: str, service: str, handler: Any) -> None:
        """Expose ``handler``'s public methods as ``service`` at ``endpoint``."""
        key = (endpoint, service)
        if key in self._services:
            raise ValueError(f"service {service!r} already registered at {endpoint!r}")
        self._services[key] = handler

    def unregister(self, endpoint: str, service: str) -> None:
        self._services.pop((endpoint, service), None)

    def set_down(self, endpoint: str, down: bool = True) -> None:
        """Mark an endpoint unreachable (calls fail with HostDownError)."""
        if down:
            self._down.add(endpoint)
        else:
            self._down.discard(endpoint)

    def is_down(self, endpoint: str) -> bool:
        return endpoint in self._down

    def set_partition(self, a: str, b: str, partitioned: bool = True) -> None:
        """Cut (or heal) the control channel between two endpoints.

        Both endpoints stay individually reachable; only calls between the
        pair fail (with :class:`HostDownError`), modelling an asymmetric
        management-network partition.
        """
        pair = frozenset((a, b))
        if partitioned:
            self._partitions.add(pair)
        else:
            self._partitions.discard(pair)

    def is_partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitions

    # ------------------------------------------------------------------
    # Calling
    # ------------------------------------------------------------------

    def call(
        self,
        src: str,
        dst: str,
        service: str,
        method: str,
        *args: Any,
        rpc_timeout: Optional[float] = None,
        **kwargs: Any,
    ) -> Signal:
        """Send a request; returns a signal fired with an :class:`RpcResponse`.

        The request arrives after one latency; the handler runs (possibly
        suspending, if it is a generator); the response arrives after
        another latency.  ``rpc_timeout`` (keyword-only, so it never
        collides with handler kwargs) is a per-call deadline in simulated
        seconds: if no response lands in time the signal fires with an
        :class:`RpcTimeout` failure and any late response is discarded.
        """
        self.calls_sent += 1
        done = Signal(self._loop, name=f"rpc:{service}.{method}")
        settled = [False]
        tel = instrument.TELEMETRY
        call_id: Optional[str] = None
        rpc_ctx: Optional[instrument.TraceContext] = None
        if tel is not None:
            call_id = f"rpc{self.calls_sent}"
            # The rpc span is a child of whatever operation issued the
            # call; the handler (and everything it spawns or calls in
            # turn) runs under the rpc span's context, so the whole
            # downstream subtree hangs off this edge.
            rpc_ctx = instrument.derive_context(call_id)
            span_args: Dict[str, Any] = {"src": src, "dst": dst,
                                         "trace": rpc_ctx.trace_id}
            if rpc_ctx.parent_id is not None:
                span_args["parent"] = rpc_ctx.parent_id
            tel.begin(self._loop.now, f"{service}.{method}", "rpc", call_id,
                      track="rpc", **span_args)
            tel.count("rpc_calls_total")

        def _fire(response: RpcResponse) -> None:
            # A deadline and a real response can race; first one wins and
            # the loser is dropped (firing a Signal twice is an error).
            if settled[0]:
                return
            settled[0] = True
            if not response.ok:
                self.calls_failed += 1
            tel = instrument.TELEMETRY
            if tel is not None and call_id is not None:
                tel.end(self._loop.now, f"{service}.{method}", "rpc", call_id,
                        track="rpc", ok=response.ok,
                        error=response.error)
                if not response.ok:
                    tel.count("rpc_calls_failed_total")
            done.fire(response)

        def _respond(response: RpcResponse) -> None:
            self._loop.call_in(self._one_way_delay(), _fire, response)

        def _deliver() -> None:
            # Handlers run under the rpc span's context: a plain handler
            # sees it for any nested calls it makes synchronously, and a
            # generator handler's Process captures it at construction.
            if rpc_ctx is None:
                _dispatch_request()
                return
            previous_ctx = instrument.set_context(rpc_ctx)
            try:
                _dispatch_request()
            finally:
                instrument.set_context(previous_ctx)

        def _dispatch_request() -> None:
            if dst in self._down or src in self._down:
                _respond(
                    RpcResponse(
                        ok=False,
                        error=f"endpoint {dst if dst in self._down else src} is down",
                        error_type=HostDownError,
                    )
                )
                return
            if frozenset((src, dst)) in self._partitions:
                _respond(
                    RpcResponse(
                        ok=False,
                        error=f"endpoints {src!r} and {dst!r} are partitioned",
                        error_type=HostDownError,
                    )
                )
                return
            handler = self._services.get((dst, service))
            if handler is None:
                _respond(
                    RpcResponse(
                        ok=False,
                        error=f"no service {service!r} at {dst!r}",
                        error_type=ServiceNotFoundError,
                    )
                )
                return
            bound = getattr(handler, method, None)
            if bound is None or method.startswith("_") or not callable(bound):
                _respond(
                    RpcResponse(
                        ok=False,
                        error=f"service {service!r} has no method {method!r}",
                        error_type=ServiceNotFoundError,
                    )
                )
                return
            try:
                result = bound(*args, **kwargs)
            except Exception as err:  # noqa: BLE001 - shipped to caller
                _respond(
                    RpcResponse(
                        ok=False,
                        error=str(err),
                        error_type=RemoteInvocationError,
                        remote_error=err,
                    )
                )
                return
            if inspect.isgenerator(result):
                proc = Process(self._loop, result, name=f"{service}.{method}")

                def _on_done(_payload: Any) -> None:
                    if proc.exception is not None:
                        _respond(
                            RpcResponse(
                                ok=False,
                                error=str(proc.exception),
                                error_type=RemoteInvocationError,
                                remote_error=proc.exception,
                            )
                        )
                    else:
                        _respond(RpcResponse(ok=True, value=proc.result))

                proc.done_signal.add_waiter(_on_done)
            else:
                _respond(RpcResponse(ok=True, value=result))

        self._loop.call_in(self._one_way_delay(), _deliver)
        if rpc_timeout is not None:
            if rpc_timeout <= 0:
                raise ValueError(f"rpc_timeout must be positive, got {rpc_timeout}")

            def _expire() -> None:
                if settled[0]:
                    return
                self.calls_timed_out += 1
                tel = instrument.TELEMETRY
                if tel is not None:
                    tel.count("rpc_calls_timed_out_total")
                _fire(
                    RpcResponse(
                        ok=False,
                        error=(
                            f"{service}.{method} to {dst!r}: no response "
                            f"within {rpc_timeout:.6g}s"
                        ),
                        error_type=RpcTimeout,
                    )
                )

            self._loop.call_in(rpc_timeout, _expire)
        return done

    def invoke(
        self,
        src: str,
        dst: str,
        service: str,
        method: str,
        *args: Any,
        rpc_timeout: Optional[float] = None,
        **kwargs: Any,
    ) -> Generator:
        """Process-friendly call: ``result = yield from fabric.invoke(...)``.

        Raises the appropriate :class:`~repro.rpc.errors.RpcError` subclass
        inside the calling process when the call fails, with endpoint /
        service / elapsed-time context attached.
        """
        started = self._loop.now
        response = yield self.call(
            src, dst, service, method, *args, rpc_timeout=rpc_timeout, **kwargs
        )
        if response.ok:
            return response.value
        elapsed = self._loop.now - started
        error_type = response.error_type or RemoteInvocationError
        if error_type is RemoteInvocationError:
            raise RemoteInvocationError(
                service,
                method,
                response.error or "",
                remote_error=response.remote_error,
                endpoint=dst,
                elapsed=elapsed,
            )
        if error_type is RpcTimeout:
            raise RpcTimeout(
                response.error or "",
                timeout=rpc_timeout,
                endpoint=dst,
                service=service,
                method=method,
                elapsed=elapsed,
            )
        raise error_type(
            response.error or "",
            endpoint=dst,
            service=service,
            method=method,
            elapsed=elapsed,
        )

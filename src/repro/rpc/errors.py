"""RPC error types."""

from __future__ import annotations


class RpcError(Exception):
    """Base class for everything the RPC fabric can raise at a caller."""


class ServiceNotFoundError(RpcError):
    """No handler registered for the (endpoint, service) pair."""


class HostDownError(RpcError):
    """The destination endpoint is marked down (failure injection)."""


class RemoteInvocationError(RpcError):
    """The remote handler raised; carries the remote error text."""

    def __init__(self, service: str, method: str, message: str):
        super().__init__(f"{service}.{method} failed remotely: {message}")
        self.service = service
        self.method = method
        self.remote_message = message

"""RPC error types.

Every error carries optional context — the endpoint the call targeted,
the service/method invoked, and how long the call had been outstanding —
so failure-injection tests and logs can say *which* call died, not just
that one did.  Context fields appear in ``str(exc)`` when set.
"""

from __future__ import annotations

from typing import Optional


class RpcError(Exception):
    """Base class for everything the RPC fabric can raise at a caller.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    endpoint, service, method:
        Where the failed call was headed (when known).
    elapsed:
        Simulated seconds the call had been outstanding when it failed.
    """

    def __init__(
        self,
        message: str = "",
        *,
        endpoint: Optional[str] = None,
        service: Optional[str] = None,
        method: Optional[str] = None,
        elapsed: Optional[float] = None,
    ):
        super().__init__(message)
        self.message = message
        self.endpoint = endpoint
        self.service = service
        self.method = method
        self.elapsed = elapsed

    def _context(self) -> str:
        parts = []
        if self.service is not None or self.method is not None:
            target = f"{self.service or '?'}.{self.method or '?'}"
            if self.endpoint is not None:
                target += f"@{self.endpoint}"
            parts.append(target)
        elif self.endpoint is not None:
            parts.append(f"endpoint={self.endpoint}")
        if self.elapsed is not None:
            parts.append(f"after {self.elapsed:.6g}s")
        return ", ".join(parts)

    def __str__(self) -> str:
        context = self._context()
        if not context:
            return self.message
        if not self.message:
            return f"[{context}]"
        return f"{self.message} [{context}]"


class ServiceNotFoundError(RpcError):
    """No handler registered for the (endpoint, service) pair."""


class HostDownError(RpcError):
    """The destination endpoint is marked down (failure injection)."""


class RpcTimeout(RpcError):
    """The call's deadline elapsed before a response arrived.

    Raised by :meth:`repro.rpc.fabric.RpcFabric.invoke` when the caller
    passed ``rpc_timeout=...`` and the response (success *or* failure)
    did not land in time.  A late response is discarded.
    """

    def __init__(
        self,
        message: str = "",
        *,
        timeout: Optional[float] = None,
        **kwargs: object,
    ):
        super().__init__(message, **kwargs)  # type: ignore[arg-type]
        self.timeout = timeout


class RemoteInvocationError(RpcError):
    """The remote handler raised; carries the remote error text.

    ``remote_error`` preserves the original exception object when the
    failure happened in-process (the simulated fabric never serializes),
    letting callers recover typed payloads such as
    :class:`~repro.net.simulator.FlowAborted` resumption state.
    """

    def __init__(
        self,
        service: str,
        method: str,
        message: str,
        *,
        remote_error: Optional[BaseException] = None,
        endpoint: Optional[str] = None,
        elapsed: Optional[float] = None,
    ):
        super().__init__(
            f"{service}.{method} failed remotely: {message}",
            endpoint=endpoint,
            service=service,
            method=method,
            elapsed=elapsed,
        )
        self.remote_message = message
        self.remote_error = remote_error

    def __str__(self) -> str:
        parts = []
        if self.endpoint is not None:
            parts.append(f"@{self.endpoint}")
        if self.elapsed is not None:
            parts.append(f"after {self.elapsed:.6g}s")
        if not parts:
            return self.message
        return f"{self.message} [{', '.join(parts)}]"

"""Control-plane RPC over the simulation (the Apache Thrift stand-in).

Mayflower's servers and clients exchange *control* messages (lookups,
replica selection, append coordination) whose payloads are tiny compared
to data transfers, so the fabric models them as fixed-latency request /
response pairs on the event loop rather than as flows in the congestion
simulator.  Data transfers never go through RPC — they ride
:class:`repro.net.FlowNetwork`.

Handlers can be plain methods (returning immediately) or generator methods
(suspending on further RPCs, delays or flow completions); failure
injection (downed hosts, dropped messages) is built in for fault tests.
"""

from repro.rpc.fabric import RpcFabric, RpcResponse
from repro.rpc.errors import (
    HostDownError,
    RemoteInvocationError,
    RpcError,
    RpcTimeout,
    ServiceNotFoundError,
)

__all__ = [
    "HostDownError",
    "RemoteInvocationError",
    "RpcError",
    "RpcFabric",
    "RpcResponse",
    "RpcTimeout",
    "ServiceNotFoundError",
]

"""Deterministic heap-based discrete-event loop.

The :class:`EventLoop` is the single source of simulated time.  Components
schedule callbacks with :meth:`EventLoop.call_at` / :meth:`EventLoop.call_in`
and the loop fires them in timestamp order; ties break by scheduling order so
repeated runs with the same seed produce byte-identical traces.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional, Tuple

from repro.sim import instrument


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine.

    Examples include scheduling an event in the simulated past or running
    a loop that has already been exhausted past an explicit horizon.
    """


class EventHandle:
    """Handle to a scheduled event, allowing cancellation.

    Cancellation is O(1): the entry stays in the heap but is skipped when
    popped.  ``cancelled`` may be inspected by user code.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, callback: Callable[..., Any], args: Tuple[Any, ...]
    ):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., Any]] = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        self.callback = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class EventLoop:
    """A deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in seconds.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._runs_traced = 0
        self._scheduler: Optional[
            Callable[[float, "list[EventHandle]"], int]
        ] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def call_at(self, when: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``.

        Raises
        ------
        SimulationError
            If ``when`` precedes the current simulated time or is not finite.
        """
        if not math.isfinite(when):
            raise SimulationError(f"event time must be finite, got {when!r}")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {when:.9f} < now {self._now:.9f}"
            )
        handle = EventHandle(when, next(self._seq), callback, args)
        heapq.heappush(self._heap, handle)
        return handle

    def call_in(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def set_scheduler(
        self, scheduler: Optional[Callable[[float, "list[EventHandle]"], int]]
    ) -> None:
        """Install (or clear) an interleaving scheduler.

        When set, every :meth:`step` collects the full set of pending
        events that share the earliest timestamp and asks
        ``scheduler(time, events)`` which one fires next (an index into
        ``events``); the rest are re-queued with their original
        scheduling sequence, so unchosen events keep their deterministic
        tie-break order.  The scheduler is only consulted when two or
        more events are simultaneously ready — with none installed (the
        default) the loop's behavior is byte-identical to the legacy
        FIFO-tie-break path.  This is the seam the interleaving explorer
        (:mod:`repro.analysis.explore`) drives; production runs never
        install one.
        """
        self._scheduler = scheduler

    def step(self) -> bool:
        """Fire the single next event.  Returns ``False`` when idle."""
        if self._scheduler is not None:
            return self._step_scheduled()
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if handle.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = handle.time
            callback, args = handle.callback, handle.args
            handle.callback, handle.args = None, ()
            self._events_processed += 1
            assert callback is not None
            callback(*args)
            # SimSanitizer seam: re-verify simulation invariants after the
            # event settles (no-op unless a sanitizer is armed).
            instrument.post_event(self)
            return True
        return False

    def _step_scheduled(self) -> bool:
        """Fire one event of the earliest-timestamp ready set, letting
        the installed scheduler pick which."""
        ready: list[EventHandle] = []
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if ready and handle.time > ready[0].time:
                heapq.heappush(self._heap, handle)
                break
            ready.append(handle)
        if not ready:
            return False
        index = 0
        if len(ready) > 1:
            assert self._scheduler is not None
            index = self._scheduler(ready[0].time, ready)
            if not 0 <= index < len(ready):
                raise SimulationError(
                    f"scheduler chose {index} of {len(ready)} ready events"
                )
        chosen = ready.pop(index)
        for other in ready:
            heapq.heappush(self._heap, other)
        if chosen.time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event heap corrupted: time went backwards")
        self._now = chosen.time
        callback, args = chosen.callback, chosen.args
        chosen.callback, chosen.args = None, ()
        self._events_processed += 1
        assert callback is not None
        callback(*args)
        instrument.post_event(self)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the loop until idle, a time horizon, or an event budget.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time; the clock is advanced to ``until``.
        max_events:
            If given, stop after firing this many events (a runaway guard).
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        tel = instrument.TELEMETRY
        run_id: Optional[str] = None
        if tel is not None:
            run_id = f"run{self._runs_traced}"
            self._runs_traced += 1
            tel.begin(self._now, "loop.run", "sim", run_id,
                      pending=self.pending_events)
        try:
            fired = 0
            while True:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible event storm"
                    )
                self.step()
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            if run_id is not None and tel is not None:
                tel.end(self._now, "loop.run", "sim", run_id,
                        events=self._events_processed)


class PeriodicTimer:
    """Fires ``callback()`` every ``interval`` seconds until stopped.

    The first firing happens at ``loop.now + first_delay`` (defaulting to one
    full interval).  Used for e.g. the Flowserver's switch-stats polling.
    """

    def __init__(
        self,
        loop: EventLoop,
        interval: float,
        callback: Callable[[], Any],
        first_delay: Optional[float] = None,
    ):
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval!r}")
        self._loop = loop
        self.interval = interval
        self._callback = callback
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        delay = interval if first_delay is None else first_delay
        self._handle = loop.call_in(delay, self._fire)

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._loop.call_in(self.interval, self._fire)

    def stop(self) -> None:
        """Stop the timer.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

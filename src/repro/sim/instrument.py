"""Dependency-free instrumentation bus for runtime observers.

The simulation layers must not import :mod:`repro.analysis` or
:mod:`repro.telemetry` (both import them), so runtime observers plug in
through this tiny multi-subscriber bus instead:

* components announce themselves via :func:`notify_component`;
* the event loop reports every fired event via :func:`post_event`;
* the active telemetry sink (a :class:`repro.telemetry.Telemetry`, duck
  typed so this module stays import-free) is published as the module
  global :data:`TELEMETRY`.

Emit sites read ``instrument.TELEMETRY`` and bail on ``None``, and the
fan-out loops below short-circuit on empty subscriber tuples, so a run
with no observers armed pays a single ``is None``/truthiness check per
site — fault-free production runs cost essentially nothing.

The historical single-sanitizer API (:func:`set_hooks` /
:func:`clear_hooks`) is kept as a thin shim over one dedicated
subscription slot, so :mod:`repro.analysis.simsan` is now just one
subscriber among many.

``REPRO_SIMSAN=1`` in the environment auto-arms the sanitizer at import
time (the opt-in documented in README §Determinism contract); under
pytest the ``--simsan`` flag does the same through the plugin in
:mod:`repro.analysis.pytest_plugin`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

ComponentHook = Callable[[str, Any], None]
PostEventHook = Callable[[Any], None]


@dataclass(frozen=True)
class TraceContext:
    """Causal position of the currently-executing code in a trace.

    ``trace_id`` names the client-visible operation (the root span);
    ``span_id`` is the innermost open span; ``parent_id`` is that span's
    parent (``None`` at the root).  The context lives here — not in
    :mod:`repro.telemetry` — because the propagation points (the process
    scheduler and the RPC fabric) must stay import-free of the telemetry
    package.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None


#: The ambient trace context of the code currently executing, or ``None``
#: outside any traced operation (and always ``None`` while no telemetry
#: session is installed).  :class:`repro.sim.process.Process` saves and
#: restores this around every generator resume — giving each cooperative
#: process its own logical context, the way ``contextvars`` follow asyncio
#: tasks — and the RPC fabric forwards it from caller to handler.
TRACE_CTX: Optional[TraceContext] = None


class Subscription:
    """Handle for one bus subscriber (either hook may be ``None``)."""

    __slots__ = ("component", "post_event")

    def __init__(
        self,
        component: Optional[ComponentHook] = None,
        post_event: Optional[PostEventHook] = None,
    ) -> None:
        self.component = component
        self.post_event = post_event


#: Subscribers, stored as immutable tuples so fan-out never observes a
#: half-updated list.  Kinds announced today: ``"loop"``, ``"network"``,
#: ``"controller"``, ``"flowserver"``, ``"streams"``, ``"collector"``,
#: ``"fabric"``.
_component_hooks: Tuple[ComponentHook, ...] = ()
_post_event_hooks: Tuple[PostEventHook, ...] = ()
_subscriptions: Tuple[Subscription, ...] = ()

#: The active telemetry sink (``repro.telemetry.Telemetry`` duck type).
#: Emit sites across the stack do ``tel = instrument.TELEMETRY`` followed
#: by an ``if tel is not None`` guard; install via
#: :func:`set_telemetry` (normally through ``repro.telemetry.install``).
TELEMETRY: Optional[Any] = None

#: The legacy single-sanitizer slot (see :func:`set_hooks`).
_legacy: Optional[Subscription] = None


def _rebuild() -> None:
    global _component_hooks, _post_event_hooks
    _component_hooks = tuple(
        sub.component for sub in _subscriptions if sub.component is not None
    )
    _post_event_hooks = tuple(
        sub.post_event for sub in _subscriptions if sub.post_event is not None
    )


def subscribe(
    component: Optional[ComponentHook] = None,
    post_event: Optional[PostEventHook] = None,
) -> Subscription:
    """Register an observer on the bus; returns its subscription handle."""
    global _subscriptions
    sub = Subscription(component, post_event)
    _subscriptions = _subscriptions + (sub,)
    _rebuild()
    return sub


def unsubscribe(sub: Subscription) -> None:
    """Remove a subscription (idempotent)."""
    global _subscriptions
    _subscriptions = tuple(s for s in _subscriptions if s is not sub)
    _rebuild()


def set_hooks(component: ComponentHook, post_event: PostEventHook) -> None:
    """Install the sanitizer hooks (compat shim: one dedicated slot)."""
    global _legacy
    if _legacy is not None:
        unsubscribe(_legacy)
    _legacy = subscribe(component, post_event)


def clear_hooks() -> None:
    """Remove the sanitizer hooks installed via :func:`set_hooks`."""
    global _legacy
    if _legacy is not None:
        unsubscribe(_legacy)
        _legacy = None


def hooks_armed() -> bool:
    """Whether any post-event observer (sanitizer or other) is live."""
    return bool(_post_event_hooks)


def set_telemetry(sink: Optional[Any]) -> None:
    """Publish (or clear, with ``None``) the active telemetry sink."""
    global TELEMETRY
    TELEMETRY = sink


def current_context() -> Optional[TraceContext]:
    """The ambient :class:`TraceContext`, if any."""
    return TRACE_CTX


def set_context(ctx: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install ``ctx`` as the ambient context; returns the previous one."""
    global TRACE_CTX
    previous = TRACE_CTX
    TRACE_CTX = ctx
    return previous


def derive_context(span_id: str) -> TraceContext:
    """A child context of the ambient one (or a fresh root when none)."""
    parent = TRACE_CTX
    if parent is None:
        return TraceContext(trace_id=span_id, span_id=span_id, parent_id=None)
    return TraceContext(
        trace_id=parent.trace_id, span_id=span_id, parent_id=parent.span_id
    )


def flight_trigger(ts: float, reason: str, **details: Any) -> Optional[Any]:
    """Snapshot the active flight recorder, if one is armed.

    Fault injection, invariant violations and explorer counterexamples
    call this (duck typed, so none of them import the telemetry
    package); returns the dump, or ``None`` when no recorder is live.
    """
    tel = TELEMETRY
    if tel is None:
        return None
    flight = getattr(tel, "flight", None)
    if flight is None:
        return None
    return flight.trigger(ts, reason, **details)


def notify_component(kind: str, component: Any) -> None:
    if _component_hooks:
        for hook in _component_hooks:
            hook(kind, component)


def post_event(loop: Any) -> None:
    if _post_event_hooks:
        for hook in _post_event_hooks:
            hook(loop)


def _auto_arm_from_env() -> None:
    if os.environ.get("REPRO_SIMSAN", "") not in ("", "0"):
        from repro.analysis import simsan  # deferred: avoids an import cycle

        simsan.arm()


_auto_arm_from_env()

"""Dependency-free instrumentation seams for the SimSanitizer.

The simulation layers must not import :mod:`repro.analysis` (it imports
them), so the runtime sanitizer plugs in through this tiny registry
instead: components announce themselves via :func:`notify_component`, and
the event loop reports every fired event via :func:`post_event`.  Both are
single ``is None`` checks when no sanitizer is armed, so fault-free
production runs pay essentially nothing.

``REPRO_SIMSAN=1`` in the environment auto-arms the sanitizer at import
time (the opt-in documented in README §Determinism contract); under
pytest the ``--simsan`` flag does the same through the plugin in
:mod:`repro.analysis.pytest_plugin`.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

#: Called as ``hook(kind, component)`` when a sanitized component is
#: constructed.  Kinds: ``"network"``, ``"controller"``, ``"flowserver"``,
#: ``"streams"``.
_component_hook: Optional[Callable[[str, Any], None]] = None
#: Called as ``hook(loop)`` after every event the loop fires.
_post_event_hook: Optional[Callable[[Any], None]] = None


def set_hooks(
    component: Callable[[str, Any], None], post_event: Callable[[Any], None]
) -> None:
    """Install sanitizer hooks (one sanitizer at a time)."""
    global _component_hook, _post_event_hook
    _component_hook = component
    _post_event_hook = post_event


def clear_hooks() -> None:
    global _component_hook, _post_event_hook
    _component_hook = None
    _post_event_hook = None


def hooks_armed() -> bool:
    return _post_event_hook is not None


def notify_component(kind: str, component: Any) -> None:
    if _component_hook is not None:
        _component_hook(kind, component)


def post_event(loop: Any) -> None:
    if _post_event_hook is not None:
        _post_event_hook(loop)


def _auto_arm_from_env() -> None:
    if os.environ.get("REPRO_SIMSAN", "") not in ("", "0"):
        from repro.analysis import simsan  # deferred: avoids an import cycle

        simsan.arm()


_auto_arm_from_env()

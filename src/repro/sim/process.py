"""Generator-based cooperative processes on top of the event loop.

A *process* is a Python generator that yields scheduling directives:

* ``Delay(seconds)`` — resume after a simulated delay;
* ``Signal`` or ``WaitSignal(signal)`` — resume when the signal fires,
  receiving the signal's payload as the value of the ``yield`` expression;
* another ``Process`` — resume when that process finishes, receiving its
  return value (or re-raising its exception).

This gives RPC handlers and server loops a linear, readable style while the
underlying engine stays a plain callback heap.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim import instrument
from repro.sim.engine import EventHandle, EventLoop, SimulationError


class ProcessKilled(Exception):
    """Injected into a process generator when :meth:`Process.kill` is called."""


class Delay:
    """Directive: suspend the yielding process for ``seconds`` of sim time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise SimulationError(f"delay must be non-negative, got {seconds!r}")
        self.seconds = seconds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.seconds!r})"


class Signal:
    """A one-shot broadcast event processes can wait on.

    Once :meth:`fire` is called, all current waiters resume with the payload
    and any later waiter resumes immediately.  Firing twice is an error —
    one-shot semantics keep RPC completion logic honest.
    """

    __slots__ = ("_loop", "_fired", "_payload", "_waiters", "name")

    def __init__(self, loop: EventLoop, name: str = ""):
        self._loop = loop
        self._fired = False
        self._payload: Any = None
        self._waiters: list[Callable[[Any], None]] = []
        self.name = name

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def payload(self) -> Any:
        return self._payload

    def fire(self, payload: Any = None) -> None:
        """Fire the signal, waking every waiter with ``payload``."""
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._payload = payload
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            # Wake-ups are scheduled as zero-delay events so that a fire()
            # inside a process cannot reentrantly advance another process.
            self._loop.call_in(0.0, waiter, payload)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register a wake-up callback; fires immediately if already fired."""
        if self._fired:
            self._loop.call_in(0.0, callback, self._payload)
        else:
            self._waiters.append(callback)


class WaitSignal:
    """Directive: explicit wrapper to wait on a :class:`Signal`."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal):
        self.signal = signal


class Process:
    """Drives a generator as a cooperative simulated process.

    Parameters
    ----------
    loop:
        The event loop providing time.
    generator:
        The coroutine body.  Its ``return`` value becomes :attr:`result`.
    name:
        Debugging label.
    """

    def __init__(self, loop: EventLoop, generator: Generator, name: str = ""):
        self._loop = loop
        self._gen = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._done_signal = Signal(loop, name=f"done:{name}")
        self._pending_handle: Optional[EventHandle] = None
        self._killed = False
        # The trace context of whoever constructed this process.  Each
        # resume runs the generator under the process's own saved context
        # (and saves back whatever it left installed), so contexts follow
        # cooperative processes the way contextvars follow asyncio tasks.
        self._trace_ctx = instrument.TRACE_CTX
        # Kick off on a zero-delay event so construction never runs user code.
        self._pending_handle = loop.call_in(0.0, self._advance, None, None)

    @property
    def done_signal(self) -> Signal:
        """Signal fired (with the process result) when the process finishes."""
        return self._done_signal

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if self.finished or self._killed:
            return
        self._killed = True
        if self._pending_handle is not None:
            self._pending_handle.cancel()
            self._pending_handle = None
        self._advance(None, ProcessKilled(f"process {self.name!r} killed"))

    def _advance(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.finished:
            return
        self._pending_handle = None
        outer_ctx = instrument.TRACE_CTX
        instrument.TRACE_CTX = self._trace_ctx
        try:
            try:
                if exc is not None:
                    directive = self._gen.throw(exc)
                else:
                    directive = self._gen.send(value)
            except StopIteration as stop:
                self._finish(result=stop.value)
                return
            except ProcessKilled:
                self._finish(result=None)
                return
            except BaseException as err:  # noqa: BLE001 - surfaced via .exception
                self._finish(error=err)
                return
            self._dispatch(directive)
        finally:
            self._trace_ctx = instrument.TRACE_CTX
            instrument.TRACE_CTX = outer_ctx

    def _dispatch(self, directive: Any) -> None:
        if isinstance(directive, Delay):
            self._pending_handle = self._loop.call_in(
                directive.seconds, self._advance, None, None
            )
        elif isinstance(directive, Signal):
            directive.add_waiter(lambda payload: self._advance(payload, None))
        elif isinstance(directive, WaitSignal):
            directive.signal.add_waiter(lambda payload: self._advance(payload, None))
        elif isinstance(directive, Process):
            child = directive

            def _on_child_done(_payload: Any) -> None:
                if child.exception is not None:
                    self._advance(None, child.exception)
                else:
                    self._advance(child.result, None)

            child.done_signal.add_waiter(_on_child_done)
        else:
            self._advance(
                None,
                SimulationError(
                    f"process {self.name!r} yielded unsupported directive "
                    f"{directive!r}"
                ),
            )

    def _finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self.finished = True
        self.result = result
        self.exception = error
        self._gen.close()
        self._done_signal.fire(result)


def spawn(loop: EventLoop, generator: Generator, name: str = "") -> Process:
    """Convenience constructor mirroring ``Process(loop, generator, name)``."""
    return Process(loop, generator, name=name)

"""Discrete-event simulation engine.

This package provides the simulation substrate used by every other part of
the Mayflower reproduction: a deterministic event loop (:class:`EventLoop`),
generator-based cooperative processes (:class:`Process`), one-shot signalling
primitives (:class:`Signal`), periodic timers (:class:`PeriodicTimer`), and
named deterministic random streams (:class:`RandomStreams`).

Time is a float in simulated seconds.  The loop is strictly deterministic:
events scheduled at the same timestamp fire in FIFO scheduling order, and
all randomness is drawn from explicitly seeded streams.
"""

from repro.sim.engine import EventHandle, EventLoop, PeriodicTimer, SimulationError
from repro.sim.process import Delay, Process, ProcessKilled, Signal, WaitSignal
from repro.sim.randomness import RandomStreams

__all__ = [
    "Delay",
    "EventHandle",
    "EventLoop",
    "PeriodicTimer",
    "Process",
    "ProcessKilled",
    "RandomStreams",
    "Signal",
    "SimulationError",
    "WaitSignal",
]

"""Deterministic named random streams.

Experiments need independent random decisions (arrival times, file
popularity, client locality, replica placement, ECMP hashing) that stay
stable when one concern changes.  :class:`RandomStreams` derives an
independent ``random.Random`` per name from a single root seed, so adding a
draw to one stream never perturbs another.

This module is the **only** place the reproduction is allowed to construct
raw generators (simlint rule DET002): every other module receives an
injected stream, or derives an isolated generator through
:func:`seeded_rng`.  Generators are :class:`CountingRandom` instances — a
drop-in ``random.Random`` producing bit-identical sequences — whose draw
counter lets the SimSanitizer verify stream isolation at runtime.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Tuple

from repro.sim import instrument

#: Canonical stream name for fault injection.  Fault plans draw all of
#: their randomness (target choice, event spacing) from this stream and
#: nothing else, so enabling faults never perturbs the arrival, placement,
#: popularity, locality or ECMP streams — the determinism guarantee of
#: DESIGN §6 extends to chaos experiments.
FAULTS_STREAM = "faults"


class CountingRandom(random.Random):
    """``random.Random`` that counts its draws.

    Overriding both ``random()`` and ``getrandbits()`` keeps CPython's
    ``_randbelow`` on the default getrandbits path, so sequences are
    bit-identical to a plain ``random.Random`` with the same seed.  The
    ``draws`` counter is the accounting the SimSanitizer uses to prove a
    stream's state only ever changes through its own draws.
    """

    def __init__(self, seed: int) -> None:
        self.draws = 0
        super().__init__(seed)

    def random(self) -> float:
        self.draws += 1
        return super().random()

    def getrandbits(self, k: int) -> int:
        self.draws += 1
        return super().getrandbits(k)


def seeded_rng(seed: int) -> CountingRandom:
    """The blessed constructor for an isolated, explicitly seeded RNG.

    Components that cannot take a :class:`RandomStreams` stream (e.g. an
    RPC fabric built before the streams exist) derive their generator
    here so DET002 can keep ``random.Random(...)`` construction banned
    everywhere else.  Same seed, same sequence as ``random.Random(seed)``.
    """
    return CountingRandom(seed)


class RandomStreams:
    """A family of named, independently seeded random generators.

    Parameters
    ----------
    seed:
        Root seed.  Two :class:`RandomStreams` with the same root seed
        produce identical streams for identical names.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams: Dict[str, CountingRandom] = {}
        instrument.notify_component("streams", self)

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        child_seed = int.from_bytes(digest[:8], "big")
        stream = CountingRandom(child_seed)
        self._streams[name] = stream
        return stream

    def faults(self) -> random.Random:
        """The dedicated fault-injection stream (see :data:`FAULTS_STREAM`)."""
        return self.stream(FAULTS_STREAM)

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child family, e.g. one per simulation replication."""
        digest = hashlib.sha256(f"{self.seed}/fork/{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def stream_snapshot(self) -> List[Tuple[str, random.Random, int]]:
        """(name, generator, draw count) for every materialized stream.

        Consumed by the SimSanitizer's stream-isolation check; sorted so
        the sweep itself is deterministic.
        """
        return [
            (name, rng, rng.draws) for name, rng in sorted(self._streams.items())
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self.seed})"

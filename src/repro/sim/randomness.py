"""Deterministic named random streams.

Experiments need independent random decisions (arrival times, file
popularity, client locality, replica placement, ECMP hashing) that stay
stable when one concern changes.  :class:`RandomStreams` derives an
independent ``random.Random`` per name from a single root seed, so adding a
draw to one stream never perturbs another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

#: Canonical stream name for fault injection.  Fault plans draw all of
#: their randomness (target choice, event spacing) from this stream and
#: nothing else, so enabling faults never perturbs the arrival, placement,
#: popularity, locality or ECMP streams — the determinism guarantee of
#: DESIGN §6 extends to chaos experiments.
FAULTS_STREAM = "faults"


class RandomStreams:
    """A family of named, independently seeded random generators.

    Parameters
    ----------
    seed:
        Root seed.  Two :class:`RandomStreams` with the same root seed
        produce identical streams for identical names.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        child_seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(child_seed)
        self._streams[name] = stream
        return stream

    def faults(self) -> random.Random:
        """The dedicated fault-injection stream (see :data:`FAULTS_STREAM`)."""
        return self.stream(FAULTS_STREAM)

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child family, e.g. one per simulation replication."""
        digest = hashlib.sha256(f"{self.seed}/fork/{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self.seed})"

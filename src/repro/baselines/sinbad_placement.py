"""Sinbad-style write placement from end-host measurements.

This is the system the paper positions itself against for writes (§1):
Sinbad "monitors end-host information, such as the bandwidth utilization
of each server, and uses this information together with the network
topology to estimate the bottleneck link for each write request."  Its
weakness, also from §1: "by not accounting for the bandwidth of
individual flows and the total number of flows in each link, Sinbad
cannot accurately estimate path bandwidths."

The implementation mirrors :class:`~repro.core.write_placement.
FlowserverWritePlacement`'s fault-domain skeleton but scores candidates
from the :class:`~repro.baselines.monitor.EndHostMonitor`'s periodically
sampled counters — so its view is stale between samples and blind to
per-flow shares, exactly the gap the co-designed placement closes.
"""

from __future__ import annotations

from random import Random
from typing import List, Optional, Sequence

from repro.baselines.monitor import EndHostMonitor
from repro.fs.errors import InvalidRequestError
from repro.fs.placement import PlacementPolicy
from repro.net.topology import Topology


class SinbadWritePlacement(PlacementPolicy):
    """Congestion-aware placement from sampled end-host utilization."""

    def __init__(
        self,
        topology: Topology,
        monitor: EndHostMonitor,
        rng: Random,
        candidates_per_tier: int = 8,
    ):
        if candidates_per_tier < 1:
            raise ValueError("candidates_per_tier must be >= 1")
        self._topo = topology
        self._monitor = monitor
        self._rng = rng
        self.candidates_per_tier = candidates_per_tier

    def place(self, replication: int, writer: Optional[str] = None) -> List[str]:
        if replication < 1:
            raise InvalidRequestError(f"replication must be >= 1, got {replication}")
        hosts = sorted(self._topo.hosts)

        pool = [h for h in hosts if h != writer] or hosts
        primary = self._least_utilized(pool)
        chosen = [primary]
        if replication == 1:
            return chosen
        primary_host = self._topo.hosts[primary]

        same_pod_other_rack = [
            h.host_id
            for h in self._topo.hosts.values()
            if h.pod == primary_host.pod
            and h.rack != primary_host.rack
            and h.host_id not in chosen
            and h.host_id != writer
        ]
        if same_pod_other_rack:
            chosen.append(self._least_utilized(sorted(same_pod_other_rack)))
        if replication == 2:
            return chosen[:2]

        other_pod = [
            h.host_id
            for h in self._topo.hosts.values()
            if h.pod != primary_host.pod
            and h.host_id not in chosen
            and h.host_id != writer
        ]
        if other_pod:
            chosen.append(self._least_utilized(sorted(other_pod)))

        while len(chosen) < replication:
            used_racks = {self._topo.hosts[c].rack for c in chosen}
            remaining = sorted(
                h.host_id
                for h in self._topo.hosts.values()
                if h.rack not in used_racks
                and h.host_id not in chosen
                and h.host_id != writer
            ) or sorted(set(hosts) - set(chosen) - {writer}) or sorted(
                set(hosts) - set(chosen)
            )
            if not remaining:
                raise InvalidRequestError(
                    f"cannot place {replication} replicas on {len(hosts)} hosts"
                )
            chosen.append(self._least_utilized(remaining))
        return chosen[:replication]

    def _least_utilized(self, pool: Sequence[str]) -> str:
        """Candidate with the least *sampled* contention near its edge.

        Sinbad's estimate for a write destination: the host's own link
        utilization and its rack uplink estimate, both from the last
        monitor sample.
        """
        if not pool:
            raise InvalidRequestError("no eligible host for replica placement")
        sample_size = min(self.candidates_per_tier, len(pool))
        candidates = self._rng.sample(list(pool), sample_size)
        scored = []
        for host in sorted(candidates):
            rack = self._topo.hosts[host].rack
            score = max(
                self._monitor.host_uplink_fraction(host),
                self._monitor.rack_uplink_fraction(rack),
            )
            scored.append((score, host))
        best = min(score for score, _ in scored)
        winners = [h for score, h in scored if score <= best + 1e-12]
        return winners[self._rng.randrange(len(winners))]

"""Uniform scheme interface: (replica selection) × (path selection).

A *scheme* turns a read request — client, replica set, size — into
concrete flow assignments.  The five schemes of §6.2/§6.3 are:

===================  ===========================  =========================
name                 replica selection             path selection
===================  ===========================  =========================
``mayflower``        joint (Flowserver, §4)        joint (Flowserver, §4)
``sinbad-mayflower`` Sinbad-R (end-host stats)     Flowserver cost model
``sinbad-ecmp``      Sinbad-R (end-host stats)     ECMP hashing
``nearest-mayflower`` static nearest               Flowserver cost model
``nearest-ecmp``     static nearest                ECMP hashing
===================  ===========================  =========================

``hdfs-ecmp`` and ``hdfs-mayflower`` are aliases of the nearest-based
schemes (HDFS's rack-aware selection *is* nearest selection) used for the
Fig. 8 prototype comparison.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.baselines.selectors import ReplicaSelector
from repro.core.flowserver import Flowserver
from repro.net.ecmp import EcmpHasher
from repro.net.routing import Path, RoutingTable


@dataclass(frozen=True)
class FlowAssignment:
    """One flow a scheme decided to start for a read job."""

    flow_id: str
    replica: str
    path: Path
    size_bits: float
    est_bw_bps: float = float("nan")


class Scheme:
    """Interface: assign flows for one read job.

    Returns an empty list for a data-local read (no network activity).
    """

    name = "abstract"

    def assign(
        self,
        client: str,
        replicas: Sequence[str],
        size_bits: float,
        job_id: Optional[str] = None,
    ) -> List[FlowAssignment]:
        raise NotImplementedError


class MayflowerScheme(Scheme):
    """The paper's system: joint replica+path selection by the Flowserver."""

    name = "mayflower"

    def __init__(self, flowserver: Flowserver):
        self._flowserver = flowserver

    def assign(self, client, replicas, size_bits, job_id=None):
        result = self._flowserver.select(client, list(replicas), size_bits, job_id=job_id)
        if result.is_local:
            return []
        return [
            FlowAssignment(
                flow_id=a.flow_id,
                replica=a.replica,
                path=a.path,
                size_bits=a.size_bits,
                est_bw_bps=a.est_bw_bps,
            )
            for a in result.assignments
        ]


class ReplicaPlusEcmpScheme(Scheme):
    """Pre-selected replica + hash-based ECMP path (oblivious to load)."""

    def __init__(
        self,
        name: str,
        selector: ReplicaSelector,
        routing: RoutingTable,
        hasher: EcmpHasher,
    ):
        self.name = name
        self._selector = selector
        self._routing = routing
        self._hasher = hasher
        self._seq = itertools.count()

    def assign(self, client, replicas, size_bits, job_id=None):
        replica = self._selector.select_replica(client, list(replicas))
        if replica == client:
            return []
        seq = next(self._seq)
        paths = self._routing.paths(replica, client)
        path = self._hasher.pick_for_flow(paths, seq)
        return [
            FlowAssignment(
                flow_id=f"{self.name}-{seq}",
                replica=replica,
                path=path,
                size_bits=size_bits,
            )
        ]


class ReplicaPlusFlowserverScheme(Scheme):
    """Pre-selected replica + Mayflower path scheduling.

    §6.2: "we coupled them with Mayflower's network flow scheduler...
    the optimization space is limited to the pre-selected source and
    destination pairs."
    """

    def __init__(self, name: str, selector: ReplicaSelector, flowserver: Flowserver):
        self.name = name
        self._selector = selector
        self._flowserver = flowserver

    def assign(self, client, replicas, size_bits, job_id=None):
        replica = self._selector.select_replica(client, list(replicas))
        if replica == client:
            return []
        result = self._flowserver.select_path_only(client, replica, size_bits, job_id=job_id)
        return [
            FlowAssignment(
                flow_id=a.flow_id,
                replica=a.replica,
                path=a.path,
                size_bits=a.size_bits,
                est_bw_bps=a.est_bw_bps,
            )
            for a in result.assignments
            if a.path is not None
        ]


#: Scheme names accepted by :func:`build_scheme` (paper bar order).
#: ``nearest-hedera`` is an extension baseline: static nearest replica
#: selection with initial ECMP routing plus a Hedera-style periodic global
#: rescheduler (attached by the experiment environment, see
#: :mod:`repro.experiments.runner`) — the "datacenter-wide dynamic network
#: flow scheduler" of §1 that cannot exploit replica choice.
SCHEME_NAMES = (
    "mayflower",
    "sinbad-mayflower",
    "sinbad-ecmp",
    "nearest-mayflower",
    "nearest-ecmp",
    "nearest-hedera",
    "hdfs-mayflower",
    "hdfs-ecmp",
)


def build_scheme(
    name: str,
    routing: RoutingTable,
    flowserver: Optional[Flowserver],
    nearest_selector: Optional[ReplicaSelector] = None,
    sinbad_selector: Optional[ReplicaSelector] = None,
    ecmp_salt: int = 0,
) -> Scheme:
    """Construct a named scheme from its ingredients.

    ``flowserver`` is required for the Mayflower-scheduled variants;
    ``nearest_selector`` / ``sinbad_selector`` for the respective replica
    policies.
    """
    hasher = EcmpHasher(salt=ecmp_salt)
    if name == "mayflower":
        if flowserver is None:
            raise ValueError("mayflower scheme requires a flowserver")
        return MayflowerScheme(flowserver)
    if name in ("nearest-ecmp", "hdfs-ecmp", "nearest-hedera"):
        # Hedera's rescheduler is environment-side; the per-job assignment
        # is still nearest replica + ECMP initial routing.
        if nearest_selector is None:
            raise ValueError(f"{name} requires a nearest selector")
        return ReplicaPlusEcmpScheme(name, nearest_selector, routing, hasher)
    if name in ("nearest-mayflower", "hdfs-mayflower"):
        if nearest_selector is None or flowserver is None:
            raise ValueError(f"{name} requires a nearest selector and flowserver")
        return ReplicaPlusFlowserverScheme(name, nearest_selector, flowserver)
    if name == "sinbad-ecmp":
        if sinbad_selector is None:
            raise ValueError("sinbad-ecmp requires a sinbad selector")
        return ReplicaPlusEcmpScheme(name, sinbad_selector, routing, hasher)
    if name == "sinbad-mayflower":
        if sinbad_selector is None or flowserver is None:
            raise ValueError("sinbad-mayflower requires a sinbad selector and flowserver")
        return ReplicaPlusFlowserverScheme(name, sinbad_selector, flowserver)
    raise ValueError(f"unknown scheme {name!r}; expected one of {SCHEME_NAMES}")

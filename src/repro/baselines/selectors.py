"""Replica selectors for the baseline schemes.

* :class:`NearestReplicaSelector` — HDFS-style static selection by network
  distance (same host < same rack < same pod < elsewhere), random among
  ties.  §1: with few replicas and many servers, "HDFS is just performing
  random replica selection" whenever distances tie.
* :class:`SinbadRSelector` — the paper's read-variant of Sinbad (§6.2):
  dynamic selection by *current* network load, estimated from end-host
  counters for the links facing the core; when the client shares a pod
  with any replica, the search space is restricted to that pod.
"""

from __future__ import annotations

from random import Random
from typing import List, Sequence

from repro.baselines.monitor import EndHostMonitor
from repro.net.topology import Topology


class ReplicaSelector:
    """Interface: pick one replica host to read from."""

    def select_replica(self, client: str, replicas: Sequence[str]) -> str:
        raise NotImplementedError


class NearestReplicaSelector(ReplicaSelector):
    """Static nearest-replica selection (HDFS rack awareness)."""

    def __init__(self, topology: Topology, rng: Random):
        self._topo = topology
        self._rng = rng

    def select_replica(self, client: str, replicas: Sequence[str]) -> str:
        if not replicas:
            raise ValueError("no replicas to select from")
        best_distance = min(self._topo.network_distance(client, r) for r in replicas)
        nearest = [
            r for r in replicas
            if self._topo.network_distance(client, r) == best_distance
        ]
        return nearest[self._rng.randrange(len(nearest))]


class SinbadRSelector(ReplicaSelector):
    """Dynamic congestion-aware selection from end-host measurements.

    For each candidate replica the selector scores the core-facing links
    its read would ascend — the replica's own edge uplink (known exactly
    from the end host) and its rack's uplinks (estimated) — and picks the
    replica with the least-utilized worst link.  Two deviations from write
    Sinbad, per §6.2: the link direction is reversed (reads flow from the
    replica towards the core), and the search is restricted to the
    client's pod when a co-located replica exists.
    """

    def __init__(
        self,
        topology: Topology,
        monitor: EndHostMonitor,
        rng: Random,
    ):
        self._topo = topology
        self._monitor = monitor
        self._rng = rng

    def select_replica(self, client: str, replicas: Sequence[str]) -> str:
        if not replicas:
            raise ValueError("no replicas to select from")
        candidates = self._restrict_to_client_pod(client, list(replicas))
        scored = []
        for replica in candidates:
            if replica == client:
                return replica  # local read beats any remote choice
            edge_fraction = self._monitor.host_uplink_fraction(replica)
            rack = self._topo.hosts[replica].rack
            # A same-rack read never ascends the rack uplinks.
            if rack == self._topo.hosts[client].rack:
                rack_fraction = 0.0
            else:
                rack_fraction = self._monitor.rack_uplink_fraction(rack)
            scored.append((max(edge_fraction, rack_fraction), replica))
        best_score = min(score for score, _ in scored)
        best = [r for score, r in scored if score <= best_score + 1e-12]
        return best[self._rng.randrange(len(best))]

    def _restrict_to_client_pod(
        self, client: str, replicas: List[str]
    ) -> List[str]:
        client_pod = self._topo.hosts[client].pod
        in_pod = [r for r in replicas if self._topo.hosts[r].pod == client_pod]
        return in_pod if in_pod else replicas

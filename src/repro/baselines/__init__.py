"""Baseline replica- and path-selection schemes from §6.2.

The paper compares Mayflower against four combinations of replica
selection {Nearest, Sinbad-R} × path selection {ECMP, Mayflower's path
scheduler}, plus HDFS (rack-aware nearest + ECMP) for the prototype
comparison:

* :mod:`repro.baselines.selectors` — replica choice: HDFS-style nearest
  (static network distance) and Sinbad-R (dynamic, end-host
  utilization-driven, restricted to the client's pod when co-located);
* :mod:`repro.baselines.monitor` — the end-host bandwidth monitor Sinbad
  relies on (periodically sampled NIC counters, so its view is stale
  between samples — one of the weaknesses §1 calls out);
* :mod:`repro.baselines.schemes` — uniform ``Scheme`` interface combining
  a replica selector with a path selector, used by both the simulation
  experiments and the full-cluster prototype.
"""

from repro.baselines.monitor import EndHostMonitor
from repro.baselines.schemes import (
    FlowAssignment,
    MayflowerScheme,
    ReplicaPlusEcmpScheme,
    ReplicaPlusFlowserverScheme,
    Scheme,
    SCHEME_NAMES,
    build_scheme,
)
from repro.baselines.selectors import NearestReplicaSelector, SinbadRSelector

__all__ = [
    "EndHostMonitor",
    "FlowAssignment",
    "MayflowerScheme",
    "NearestReplicaSelector",
    "ReplicaPlusEcmpScheme",
    "ReplicaPlusFlowserverScheme",
    "SCHEME_NAMES",
    "Scheme",
    "SinbadRSelector",
    "build_scheme",
]

"""End-host bandwidth monitoring (the Sinbad substrate).

Sinbad "monitors end-host information, such as the bandwidth utilization
of each server, and uses this information together with the network
topology to estimate the bottleneck link" (§1).  This module reproduces
that vantage point: every ``sample_interval`` seconds each host samples
its own NIC transmit rate (end hosts know their own counters exactly),
and rack uplink utilization is *estimated* as the sum of the member
hosts' transmit rates — an upper bound, since some of that traffic stays
in the rack.  Between samples the view is stale, which is precisely the
estimation weakness the paper contrasts with Mayflower's flow-level
modelling.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.view import NetworkView
from repro.sim.engine import EventLoop, PeriodicTimer


class EndHostMonitor:
    """Periodically sampled per-host uplink utilization.

    Parameters
    ----------
    sample_interval:
        Seconds between samples (1 s default, matching typical end-host
        monitoring daemons).
    """

    def __init__(
        self,
        loop: EventLoop,
        network: NetworkView,
        sample_interval: float = 1.0,
        auto_start: bool = True,
    ):
        if sample_interval <= 0:
            raise ValueError(f"sample_interval must be positive, got {sample_interval}")
        self._loop = loop
        self._network = network
        self._topo = network.topology
        self.sample_interval = sample_interval
        self._host_tx_bps: Dict[str, float] = {h: 0.0 for h in self._topo.hosts}
        self.samples_taken = 0
        self._timer: Optional[PeriodicTimer] = None
        if auto_start:
            self.start()

    def start(self) -> None:
        if self._timer is None or self._timer.stopped:
            self._timer = PeriodicTimer(
                self._loop, self.sample_interval, self.sample_now, first_delay=0.0
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def sample_now(self) -> None:
        """Take an immediate sample of every host's uplink transmit rate."""
        for host_id in self._host_tx_bps:
            edge = self._topo.edge_switch_of(host_id)
            link_id = f"{host_id}->{edge}"
            self._host_tx_bps[host_id] = self._network.link_utilization_bps(link_id)
        self.samples_taken += 1

    # ------------------------------------------------------------------
    # Views consumed by Sinbad-R
    # ------------------------------------------------------------------

    def host_uplink_bps(self, host_id: str) -> float:
        """Last sampled transmit rate of the host's edge uplink."""
        return self._host_tx_bps[host_id]

    def host_uplink_fraction(self, host_id: str) -> float:
        """Utilization as a fraction of the edge link capacity."""
        edge = self._topo.edge_switch_of(host_id)
        link = self._topo.link_between(host_id, edge)
        return self._host_tx_bps[host_id] / link.capacity_bps

    def rack_uplink_fraction(self, rack: str) -> float:
        """Estimated utilization of the rack's core-facing uplinks.

        Computed from end-host counters only: the sum of member hosts'
        transmit rates over the total rack uplink capacity.  An upper
        bound, since rack-local traffic never uses the uplinks.
        """
        member_tx = sum(
            self._host_tx_bps[h.host_id] for h in self._topo.hosts_in_rack(rack)
        )
        uplink_capacity = sum(
            self._topo.links[lid].capacity_bps
            for lid in self._topo.adjacency[rack]
            if self._topo.links[lid].dst in self._topo.switches
        )
        if uplink_capacity <= 0:
            return 0.0
        return member_tx / uplink_capacity

"""Hedera-style centralized flow scheduling (§2.4 related work).

Hedera (NSDI '10) periodically detects *elephant* flows and re-places
them on least-loaded paths using global network information — but, as the
paper argues in §1, it "cannot take advantage of the availability of
multiple replica choices": the endpoints are fixed, so when every path
between the requester and the pre-selected replica is congested it has
nothing left to do.

:class:`HederaScheduler` reproduces the Global First Fit variant:

1. every ``interval`` seconds, list active flows and keep those with more
   than ``elephant_threshold_bits`` outstanding;
2. estimate each elephant's natural demand as its host-NIC fair share
   (edge capacity divided by the number of flows sharing the source's
   uplink — Hedera's host-limited demand estimator, simplified);
3. walk elephants largest-first and greedily assign each to the first
   equal-cost path whose links can absorb the demand on top of the
   reservations made so far this round; re-route through the controller
   when the chosen path differs from the current one.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.routing import RoutingTable
from repro.net.view import FlowView
from repro.sdn.controller import Controller
from repro.sim.engine import EventLoop, PeriodicTimer


class HederaScheduler:
    """Periodic global first-fit rescheduler for elephant flows."""

    def __init__(
        self,
        loop: EventLoop,
        controller: Controller,
        routing: RoutingTable,
        interval: float = 5.0,
        elephant_threshold_bits: float = 100e6,
        auto_start: bool = True,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._loop = loop
        self._controller = controller
        self._routing = routing
        self._topo = controller.network.topology
        self.interval = interval
        self.elephant_threshold_bits = elephant_threshold_bits
        self.rounds = 0
        self.reroutes = 0
        self._timer: Optional[PeriodicTimer] = None
        if auto_start:
            self.start()

    def start(self) -> None:
        if self._timer is None or self._timer.stopped:
            self._timer = PeriodicTimer(self._loop, self.interval, self.schedule_round)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    # ------------------------------------------------------------------
    # One scheduling round
    # ------------------------------------------------------------------

    def schedule_round(self) -> int:
        """Run global first fit once; returns the number of re-routes."""
        self.rounds += 1
        network = self._controller.view
        flows = list(network.active_flows.values())
        elephants = [
            f for f in flows if f.remaining_bits > self.elephant_threshold_bits
        ]
        if not elephants:
            return 0
        demands = self._estimate_demands(flows)

        # Reservations start with the demands of the non-elephant flows on
        # their current paths; elephants are placed on top, largest first.
        reserved: Dict[str, float] = {}
        for flow in flows:
            if flow in elephants:
                continue
            for link_id in flow.path.link_ids:
                reserved[link_id] = reserved.get(link_id, 0.0) + demands[flow.flow_id]

        moved = 0
        for flow in sorted(
            elephants, key=lambda f: (-f.remaining_bits, f.flow_id)
        ):
            demand = demands[flow.flow_id]
            chosen = None
            for path in self._routing.paths(flow.src, flow.dst):
                if self._fits(path.link_ids, demand, reserved):
                    chosen = path
                    break
            if chosen is None:
                chosen = flow.path  # nothing fits: leave it where it is
            for link_id in chosen.link_ids:
                reserved[link_id] = reserved.get(link_id, 0.0) + demand
            if chosen.link_ids != flow.path.link_ids:
                self._controller.reroute_transfer(flow.flow_id, chosen)
                moved += 1
        self.reroutes += moved
        return moved

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _estimate_demands(self, flows: List[FlowView]) -> Dict[str, float]:
        """Host-limited demand: edge capacity over flows sharing the uplink."""
        sharing: Dict[str, int] = {}
        for flow in flows:
            sharing[flow.src] = sharing.get(flow.src, 0) + 1
        demands = {}
        for flow in flows:
            edge = self._topo.edge_switch_of(flow.src)
            capacity = self._topo.link_between(flow.src, edge).capacity_bps
            demands[flow.flow_id] = capacity / sharing[flow.src]
        return demands

    def _fits(
        self,
        link_ids,
        demand: float,
        reserved: Dict[str, float],
    ) -> bool:
        for link_id in link_ids:
            capacity = self._topo.links[link_id].capacity_bps
            if reserved.get(link_id, 0.0) + demand > capacity * (1 + 1e-9):
                return False
        return True

"""Root pytest configuration.

Loads the SimSanitizer plugin so ``pytest --simsan`` (or the
``REPRO_SIMSAN=1`` environment variable) arms runtime invariant checking
for the whole test session.  See DESIGN.md "Determinism contract".
"""

pytest_plugins = ["repro.analysis.pytest_plugin"]
